#include "core/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "test_util.hpp"

namespace mhm {
namespace {

using mhm::testing::expect_vector_near;

/// Synthetic data living (mostly) in a low-dimensional subspace: a mixture
/// of `rank` fixed activity patterns plus noise — the structure MHMs have.
std::vector<std::vector<double>> subspace_data(std::size_t n, std::size_t dim,
                                               std::size_t rank, double noise,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> patterns(rank, std::vector<double>(dim));
  for (auto& p : patterns) {
    for (double& v : p) v = rng.uniform(-1.0, 1.0);
  }
  std::vector<std::vector<double>> data(n, std::vector<double>(dim, 0.0));
  for (auto& x : data) {
    for (const auto& p : patterns) {
      const double w = rng.uniform(0.0, 10.0);
      for (std::size_t i = 0; i < dim; ++i) x[i] += w * p[i];
    }
    for (double& v : x) v += rng.normal(0.0, noise);
  }
  return data;
}

TEST(Eigenmemory, RejectsDegenerateInput) {
  EXPECT_THROW(Eigenmemory::fit(std::vector<std::vector<double>>{}),
               ConfigError);
  EXPECT_THROW(
      Eigenmemory::fit(std::vector<std::vector<double>>{{}, {}}),
      ConfigError);
  Eigenmemory::Options opts;
  opts.components = 5;
  EXPECT_THROW(
      Eigenmemory::fit(std::vector<std::vector<double>>{{1.0, 2.0}}, opts),
      ConfigError);
}

TEST(Eigenmemory, MeanIsEmpiricalMean) {
  const std::vector<std::vector<double>> data = {{1.0, 2.0}, {3.0, 6.0}};
  Eigenmemory::Options opts;
  opts.components = 1;
  const auto em = Eigenmemory::fit(data, opts);
  expect_vector_near(em.mean(), {2.0, 4.0}, 1e-14, "empirical mean");
}

TEST(Eigenmemory, RecoversDominantDirection) {
  // Points along (3,4)/5 with tiny noise: first eigenmemory = that axis.
  Rng rng(1);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.normal(0.0, 5.0);
    data.push_back({0.6 * t + rng.normal(0.0, 0.01),
                    0.8 * t + rng.normal(0.0, 0.01)});
  }
  Eigenmemory::Options opts;
  opts.components = 1;
  const auto em = Eigenmemory::fit(data, opts);
  const auto u = em.basis().row(0);
  EXPECT_NEAR(std::abs(u[0]), 0.6, 0.01);
  EXPECT_NEAR(std::abs(u[1]), 0.8, 0.01);
}

TEST(Eigenmemory, BasisRowsAreOrthonormal) {
  const auto data = subspace_data(200, 30, 5, 0.1, 2);
  Eigenmemory::Options opts;
  opts.components = 5;
  const auto em = Eigenmemory::fit(data, opts);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = 0; b < 5; ++b) {
      const double d = linalg::dot(em.basis().row(a), em.basis().row(b));
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-9) << "rows " << a << "," << b;
    }
  }
}

TEST(Eigenmemory, EigenvaluesDecreaseAndAreNonNegative) {
  const auto data = subspace_data(300, 25, 6, 0.2, 3);
  Eigenmemory::Options opts;
  opts.components = 10;
  const auto em = Eigenmemory::fit(data, opts);
  for (std::size_t k = 0; k < em.eigenvalues().size(); ++k) {
    EXPECT_GE(em.eigenvalues()[k], 0.0);
    if (k > 0) {
      EXPECT_LE(em.eigenvalues()[k], em.eigenvalues()[k - 1]);
    }
  }
}

TEST(Eigenmemory, FullRankProjectionReconstructsExactly) {
  // With L' = L the projection is lossless (paper §4.2: "When we use L
  // eigenmemories, we can exactly represent the original input MHMs").
  const auto data = subspace_data(50, 6, 6, 1.0, 4);
  Eigenmemory::Options opts;
  opts.components = 6;
  opts.allow_gram_trick = false;
  const auto em = Eigenmemory::fit(data, opts);
  for (const auto& x : data) {
    const auto rec = em.reconstruct(em.project(x));
    expect_vector_near(rec, x, 1e-8, "lossless reconstruction");
    EXPECT_NEAR(em.reconstruction_error(x), 0.0, 1e-7);
  }
}

class EigenmemoryComponentSweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenmemoryComponentSweep, ReconstructionErrorShrinksWithComponents) {
  const auto data = subspace_data(150, 20, 8, 0.3, 5);
  const std::size_t k = GetParam();
  Eigenmemory::Options opts;
  opts.components = k;
  const auto em = Eigenmemory::fit(data, opts);
  Eigenmemory::Options opts_more;
  opts_more.components = k + 2;
  const auto em_more = Eigenmemory::fit(data, opts_more);
  double err_k = 0.0;
  double err_more = 0.0;
  for (const auto& x : data) {
    err_k += em.reconstruction_error(x);
    err_more += em_more.reconstruction_error(x);
  }
  EXPECT_LE(err_more, err_k + 1e-9);
  EXPECT_GE(em_more.variance_explained(), em.variance_explained() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Components, EigenmemoryComponentSweep,
                         ::testing::Values(1, 2, 4, 6, 8, 10));

TEST(Eigenmemory, AutomaticComponentCountHitsVarianceTarget) {
  const auto data = subspace_data(200, 40, 4, 0.01, 6);
  Eigenmemory::Options opts;
  opts.components = 0;
  opts.variance_target = 0.999;
  const auto em = Eigenmemory::fit(data, opts);
  // 4 strong patterns + tiny noise: ~4 components reach 99.9 %.
  EXPECT_GE(em.components(), 3u);
  EXPECT_LE(em.components(), 6u);
  EXPECT_GE(em.variance_explained(), 0.999);
}

TEST(Eigenmemory, VarianceTargetValidation) {
  const auto data = subspace_data(20, 5, 2, 0.1, 7);
  Eigenmemory::Options opts;
  opts.components = 0;
  opts.variance_target = 0.0;
  EXPECT_THROW(Eigenmemory::fit(data, opts), ConfigError);
  opts.variance_target = 1.5;
  EXPECT_THROW(Eigenmemory::fit(data, opts), ConfigError);
}

TEST(Eigenmemory, GramTrickMatchesDirectPath) {
  // N < L triggers the Gram path; with the trick disabled the direct
  // covariance path must give the same subspace. Compare projections of a
  // probe vector up to sign.
  const auto data = subspace_data(20, 40, 3, 0.05, 8);
  Eigenmemory::Options gram_opts;
  gram_opts.components = 3;
  gram_opts.allow_gram_trick = true;
  Eigenmemory::Options direct_opts = gram_opts;
  direct_opts.allow_gram_trick = false;
  const auto em_gram = Eigenmemory::fit(data, gram_opts);
  const auto em_direct = Eigenmemory::fit(data, direct_opts);

  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(em_gram.eigenvalues()[k], em_direct.eigenvalues()[k],
                1e-6 * (1.0 + em_direct.eigenvalues()[k]))
        << "eigenvalue " << k;
    std::vector<double> g(em_gram.basis().row(k).begin(),
                          em_gram.basis().row(k).end());
    std::vector<double> d(em_direct.basis().row(k).begin(),
                          em_direct.basis().row(k).end());
    mhm::testing::expect_vector_near_up_to_sign(g, d, 1e-5);
  }
}

TEST(Eigenmemory, ProjectionOfMeanIsZero) {
  const auto data = subspace_data(100, 15, 3, 0.2, 9);
  Eigenmemory::Options opts;
  opts.components = 3;
  const auto em = Eigenmemory::fit(data, opts);
  const auto w = em.project(em.mean());
  for (double v : w) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Eigenmemory, ProjectRejectsWrongLength) {
  const auto data = subspace_data(50, 10, 2, 0.1, 10);
  Eigenmemory::Options opts;
  opts.components = 2;
  const auto em = Eigenmemory::fit(data, opts);
  EXPECT_THROW(em.project(std::vector<double>(9, 0.0)), LogicError);
}

TEST(Eigenmemory, FitsHeatMapsDirectly) {
  HeatMapTrace maps;
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    HeatMap m(12);
    for (std::size_t c = 0; c < 12; ++c) {
      m.increment(c, rng.poisson(10.0 * static_cast<double>(c % 3 + 1)));
    }
    maps.push_back(m);
  }
  Eigenmemory::Options opts;
  opts.components = 4;
  const auto em = Eigenmemory::fit(maps, opts);
  EXPECT_EQ(em.input_dim(), 12u);
  EXPECT_EQ(em.components(), 4u);
  const auto w = em.project(maps.front());
  EXPECT_EQ(w.size(), 4u);
}

TEST(Eigenmemory, ConstantDataHasZeroVariance) {
  const std::vector<std::vector<double>> data(10,
                                              std::vector<double>{5.0, 5.0});
  Eigenmemory::Options opts;
  opts.components = 1;
  const auto em = Eigenmemory::fit(data, opts);
  // Everything projects to ~0 and variance_explained degenerates to 1.
  const auto w = em.project(data.front());
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(em.variance_explained(), 1.0);
}

// ---------------------------------------------------------------------------
// fit_topk cross-check: the fast top-k paths (Gram trick for small N,
// randomized subspace iteration for large N) must agree with the exact
// full-eigensolve oracle on the retained subspace. Agreement is measured
// basis-free: principal angles between the two k-dimensional subspaces
// (via projection residuals), plus eigenvalue / explained-variance drift.
// The exact solver stays wired in as the oracle here — tier-1 runs this.

/// sin of the largest principal angle between span(exact rows) and
/// span(fast rows): for each oracle direction u, project onto the fast
/// subspace and measure what is lost.
double max_principal_angle_sin(const Eigenmemory& exact,
                               const Eigenmemory& fast, std::size_t k) {
  double worst = 0.0;
  for (std::size_t a = 0; a < k; ++a) {
    const auto u = exact.basis().row(a);
    double captured = 0.0;
    for (std::size_t b = 0; b < k; ++b) {
      const double c = linalg::dot(u, fast.basis().row(b));
      captured += c * c;
    }
    const double s2 = std::max(0.0, 1.0 - captured);
    worst = std::max(worst, std::sqrt(s2));
  }
  return worst;
}

struct TopkCase {
  std::size_t n;
  std::size_t dim;
};

class EigenmemoryTopkCrossCheck : public ::testing::TestWithParam<TopkCase> {};

TEST_P(EigenmemoryTopkCrossCheck, MatchesExactSolverOnTopkSubspace) {
  const auto [n, dim] = GetParam();
  constexpr std::size_t kRank = 9;
  const auto data = subspace_data(n, dim, kRank, 0.05, 20150607);

  Eigenmemory::Options exact_opts;
  exact_opts.components = kRank;
  exact_opts.allow_gram_trick = false;  // the oracle: full L×L eigensolve
  const auto exact = Eigenmemory::fit(data, exact_opts);

  Eigenmemory::TopkOptions fast_opts;
  fast_opts.components = kRank;
  const auto fast = Eigenmemory::fit_topk(data, fast_opts);

  ASSERT_EQ(fast.components(), kRank);
  EXPECT_EQ(fast.input_dim(), dim);

  // Same top-k subspace: every principal angle below tolerance.
  EXPECT_LT(max_principal_angle_sin(exact, fast, kRank), 1e-6);

  // Eigenvalues and explained variance track the oracle.
  for (std::size_t k = 0; k < kRank; ++k) {
    EXPECT_NEAR(fast.eigenvalues()[k], exact.eigenvalues()[k],
                1e-6 * (1.0 + exact.eigenvalues()[k]))
        << "eigenvalue " << k;
  }
  EXPECT_NEAR(fast.variance_explained(kRank), exact.variance_explained(kRank),
              1e-6);

  // Projections agree up to per-direction sign (the eigensolvers are free
  // to flip any axis).
  const auto we = exact.project(data.front());
  const auto wf = fast.project(data.front());
  for (std::size_t k = 0; k < kRank; ++k) {
    EXPECT_NEAR(std::abs(wf[k]), std::abs(we[k]),
                1e-6 * (1.0 + std::abs(we[k])))
        << "projection weight " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SampleCounts, EigenmemoryTopkCrossCheck,
    ::testing::Values(TopkCase{50, 256},    // N < L, small: Gram route
                      TopkCase{500, 640},   // N < L, mid: Gram route
                      TopkCase{5000, 256}), // N > L: randomized route
    [](const ::testing::TestParamInfo<TopkCase>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.dim);
    });

TEST(EigenmemoryTopk, DeterministicAcrossThreadCounts) {
  const auto data = subspace_data(1200, 96, 6, 0.1, 77);
  Eigenmemory::TopkOptions opts;
  opts.components = 6;
  set_global_threads(1);
  const auto serial = Eigenmemory::fit_topk(data, opts);
  set_global_threads(4);
  const auto parallel = Eigenmemory::fit_topk(data, opts);
  set_global_threads(0);
  ASSERT_EQ(serial.components(), parallel.components());
  for (std::size_t k = 0; k < serial.components(); ++k) {
    EXPECT_EQ(serial.eigenvalues()[k], parallel.eigenvalues()[k]);
    const auto a = serial.basis().row(k);
    const auto b = parallel.basis().row(k);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "basis(" << k << "," << i << ")";
    }
  }
}

TEST(EigenmemoryTopk, RejectsDegenerateRequests) {
  const auto data = subspace_data(40, 16, 3, 0.1, 13);
  Eigenmemory::TopkOptions opts;
  opts.components = 0;
  EXPECT_THROW(Eigenmemory::fit_topk(data, opts), ConfigError);
  opts.components = 17;  // > min(N, L) = 16
  EXPECT_THROW(Eigenmemory::fit_topk(data, opts), ConfigError);
  EXPECT_THROW(
      Eigenmemory::fit_topk(std::vector<std::vector<double>>{}, opts),
      ConfigError);
}

TEST(EigenmemoryTopk, RandomizedBasisRowsAreOrthonormal) {
  // N > gram_limit forces the randomized route even with N < L disabled.
  const auto data = subspace_data(2000, 64, 5, 0.2, 14);
  Eigenmemory::TopkOptions opts;
  opts.components = 5;
  const auto em = Eigenmemory::fit_topk(data, opts);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = 0; b < 5; ++b) {
      const double d = linalg::dot(em.basis().row(a), em.basis().row(b));
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-9) << "rows " << a << "," << b;
    }
  }
}

TEST(Eigenmemory, SpectrumIsFullLength) {
  const auto data = subspace_data(60, 12, 4, 0.3, 12);
  Eigenmemory::Options opts;
  opts.components = 2;
  const auto em = Eigenmemory::fit(data, opts);
  EXPECT_EQ(em.spectrum().size(), 12u);   // direct path: L eigenvalues
  EXPECT_EQ(em.eigenvalues().size(), 2u); // retained subset
}

}  // namespace
}  // namespace mhm
