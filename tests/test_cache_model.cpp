#include "hw/cache_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/trace_recorder.hpp"

namespace mhm::hw {
namespace {

CacheGeometry tiny_cache() {
  // 2 sets x 2 ways x 32 B lines = 128 B.
  return CacheGeometry{.size_bytes = 128, .line_bytes = 32, .ways = 2};
}

TEST(CacheGeometry, DefaultsMatchPrototype) {
  // §5.1: 32 KB L1 caches, 512 KB shared L2.
  EXPECT_EQ(CacheGeometry::l1_default().size_bytes, 32u * 1024);
  EXPECT_EQ(CacheGeometry::l2_default().size_bytes, 512u * 1024);
  EXPECT_NO_THROW(CacheGeometry::l1_default().validate());
  EXPECT_NO_THROW(CacheGeometry::l2_default().validate());
}

TEST(CacheGeometry, ValidationRejectsBadShapes) {
  CacheGeometry g = tiny_cache();
  g.line_bytes = 30;
  EXPECT_THROW(g.validate(), ConfigError);

  g = tiny_cache();
  g.ways = 0;
  EXPECT_THROW(g.validate(), ConfigError);

  g = tiny_cache();
  g.size_bytes = 100;  // not a multiple of line*ways
  EXPECT_THROW(g.validate(), ConfigError);

  g = tiny_cache();
  g.size_bytes = 192;  // 3 sets: not a power of two
  EXPECT_THROW(g.validate(), ConfigError);
}

TEST(CacheModel, FirstAccessMissesSecondHits) {
  CacheModel cache(tiny_cache(), nullptr);
  cache.on_burst(AccessBurst{.time = 0, .base = 0x1000, .size_bytes = 4,
                             .sweeps = 1});
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.on_burst(AccessBurst{.time = 1, .base = 0x1000, .size_bytes = 4,
                             .sweeps = 1});
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(CacheModel, SameLineDifferentWordHits) {
  CacheModel cache(tiny_cache(), nullptr);
  cache.on_burst(AccessBurst{.time = 0, .base = 0x1000, .size_bytes = 4,
                             .sweeps = 1});
  cache.on_burst(AccessBurst{.time = 1, .base = 0x1010, .size_bytes = 4,
                             .sweeps = 1});  // same 32 B line
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(CacheModel, SweepWithinBurstHitsAfterFill) {
  // A 2-sweep burst over one line: first sweep misses, second sweep hits.
  CacheModel cache(tiny_cache(), nullptr);
  cache.on_burst(AccessBurst{.time = 0, .base = 0x1000, .size_bytes = 32,
                             .sweeps = 2});
  EXPECT_EQ(cache.misses(), 8u);  // 8 words of the first sweep
  EXPECT_EQ(cache.hits(), 8u);    // 8 words of the second
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed) {
  // 2-way set: lines A, B fill the set; touching A then adding C must
  // evict B (the least recently used), so B misses again but A still hits.
  CacheModel cache(tiny_cache(), nullptr);
  const Address a = 0x0000;   // set 0
  const Address b = 0x0040;   // set 0 (64 = 2 sets * 32 B stride)
  const Address c = 0x0080;   // set 0
  auto touch = [&](Address addr) {
    cache.on_burst(AccessBurst{.time = 0, .base = addr, .size_bytes = 4,
                               .sweeps = 1});
  };
  touch(a);  // miss
  touch(b);  // miss
  touch(a);  // hit, A most recent
  touch(c);  // miss, evicts B
  EXPECT_EQ(cache.misses(), 3u);
  touch(a);  // still cached
  EXPECT_EQ(cache.hits(), 2u);
  touch(b);  // was evicted
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(CacheModel, DownstreamSeesOnlyLineFills) {
  MemoryBus downstream;
  TraceRecorder rec;
  downstream.attach(&rec);
  CacheModel cache(tiny_cache(), &downstream);

  // 64 B burst = 2 lines, swept twice: 2 fills on sweep one, none after.
  cache.on_burst(AccessBurst{.time = 5, .base = 0x2000, .size_bytes = 64,
                             .sweeps = 2});
  ASSERT_EQ(rec.bursts().size(), 2u);
  for (const auto& b : rec.bursts()) {
    EXPECT_EQ(b.size_bytes, 32u);
    EXPECT_EQ(b.sweeps, 1u);
    EXPECT_EQ(b.time, 5u);
  }
}

TEST(CacheModel, MissStreamIsLineAligned) {
  MemoryBus downstream;
  TraceRecorder rec;
  downstream.attach(&rec);
  CacheModel cache(tiny_cache(), &downstream);
  cache.on_burst(AccessBurst{.time = 0, .base = 0x2014, .size_bytes = 4,
                             .sweeps = 1});
  ASSERT_EQ(rec.bursts().size(), 1u);
  EXPECT_EQ(rec.bursts()[0].base, 0x2000u);
}

TEST(CacheModel, InvalidateAllForcesRefills) {
  CacheModel cache(tiny_cache(), nullptr);
  cache.on_burst(AccessBurst{.time = 0, .base = 0x1000, .size_bytes = 4,
                             .sweeps = 1});
  cache.invalidate_all();
  cache.on_burst(AccessBurst{.time = 1, .base = 0x1000, .size_bytes = 4,
                             .sweeps = 1});
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheModel, HitRateGrowsWithLocality) {
  CacheModel cache(CacheGeometry::l1_default(), nullptr);
  // Loop over an 8 KB region (fits in 32 KB L1) ten times.
  for (int sweep = 0; sweep < 10; ++sweep) {
    cache.on_burst(AccessBurst{.time = static_cast<SimTime>(sweep),
                               .base = 0x10000, .size_bytes = 8 * 1024,
                               .sweeps = 1});
  }
  EXPECT_GT(cache.hit_rate(), 0.85);
}

TEST(CacheModel, ThrashingRegionKeepsMissing) {
  // Working set (256 B) spans 8 lines mapping to 2 sets of a 128 B cache:
  // 4 lines/set with 2 ways -> sequential sweeps always evict before reuse.
  CacheModel cache(tiny_cache(), nullptr);
  for (int sweep = 0; sweep < 10; ++sweep) {
    cache.on_burst(AccessBurst{.time = static_cast<SimTime>(sweep),
                               .base = 0x0, .size_bytes = 256, .sweeps = 1});
  }
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheModel, ForwardsTimeToDownstream) {
  MemoryBus downstream;
  CacheModel cache(tiny_cache(), &downstream);
  cache.on_time(123);
  EXPECT_EQ(downstream.last_time(), 123u);
}

TEST(CacheModel, HitRateZeroWhenUntouched) {
  CacheModel cache(tiny_cache(), nullptr);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

}  // namespace
}  // namespace mhm::hw
