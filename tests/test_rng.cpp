#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mhm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  // Crude decorrelation check: child streams should not collide.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += (child1() == child2());
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(9);
  Rng p2(9);
  Rng c1 = p1.fork(5);
  Rng c2 = p2.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, UniformWithinUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalJitterHasMedianOne) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.lognormal_jitter(0.3));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 1.0, 0.02);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, LognormalJitterZeroSigmaIsIdentity) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(rng.lognormal_jitter(0.0), 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(0.25));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(14);
  EXPECT_THROW(rng.exponential(0.0), LogicError);
  EXPECT_THROW(rng.exponential(-1.0), LogicError);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.variance(), 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(16);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(stats.mean(), 200.0, 1.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(200.0), 0.5);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(18);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteZeroWeightNeverChosen) {
  Rng rng(19);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.discrete(weights), 1u);
}

TEST(Rng, DiscreteRejectsDegenerateInput) {
  Rng rng(20);
  EXPECT_THROW(rng.discrete({}), LogicError);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), LogicError);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), LogicError);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, PermutationIsValid) {
  Rng rng(23);
  for (std::size_t n : {0u, 1u, 2u, 10u, 100u}) {
    const auto perm = rng.permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), n);
    if (n > 0) {
      EXPECT_EQ(*seen.begin(), 0u);
      EXPECT_EQ(*seen.rbegin(), n - 1);
    }
  }
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(24);
  // At least one of a few 50-element permutations must differ from identity.
  bool any_shuffled = false;
  for (int trial = 0; trial < 5; ++trial) {
    const auto perm = rng.permutation(50);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      if (perm[i] != i) any_shuffled = true;
    }
  }
  EXPECT_TRUE(any_shuffled);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace mhm
