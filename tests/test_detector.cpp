#include "core/detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace mhm {
namespace {

/// Normal "reduced MHM"-like data: 3 activity patterns in 20 dimensions.
struct SyntheticWorld {
  std::vector<std::vector<double>> patterns;
  Rng rng{1234};

  explicit SyntheticWorld(std::uint64_t seed) : rng(seed) {
    for (int p = 0; p < 3; ++p) {
      std::vector<double> pattern(20);
      for (double& v : pattern) v = rng.uniform(0.0, 100.0);
      patterns.push_back(std::move(pattern));
    }
  }

  std::vector<double> normal_sample() {
    const auto& p =
        patterns[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    std::vector<double> x = p;
    for (double& v : x) v += rng.normal(0.0, 2.0);
    return x;
  }

  std::vector<double> anomalous_sample() {
    std::vector<double> x = patterns[0];
    for (double& v : x) v += rng.normal(0.0, 2.0);
    // A new activity the training never saw: shift a block of cells.
    for (int i = 5; i < 12; ++i) x[i] += 40.0;
    return x;
  }

  std::vector<std::vector<double>> batch(std::size_t n, bool anomalous) {
    std::vector<std::vector<double>> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(anomalous ? anomalous_sample() : normal_sample());
    }
    return out;
  }
};

AnomalyDetector::Options small_options() {
  AnomalyDetector::Options opts;
  opts.pca.components = 5;
  opts.gmm.components = 3;
  opts.gmm.restarts = 3;
  return opts;
}

TEST(ThresholdCalibrator, QuantileSemantics) {
  std::vector<double> scores;
  for (int i = 0; i < 1000; ++i) scores.push_back(static_cast<double>(i));
  const ThresholdCalibrator cal(scores);
  EXPECT_NEAR(cal.at(0.01).log10_value, 9.99, 0.5);
  EXPECT_NEAR(cal.at(0.5).log10_value, 499.5, 1.0);
  EXPECT_LT(cal.theta_05().log10_value, cal.theta_1().log10_value);
  EXPECT_DOUBLE_EQ(cal.theta_05().p, 0.005);
  EXPECT_DOUBLE_EQ(cal.theta_1().p, 0.01);
}

TEST(ThresholdCalibrator, RejectsBadInput) {
  EXPECT_THROW(ThresholdCalibrator({}), ConfigError);
  const ThresholdCalibrator cal({1.0, 2.0});
  EXPECT_THROW(cal.at(0.0), ConfigError);
  EXPECT_THROW(cal.at(1.0), ConfigError);
}

TEST(AnomalyDetector, TrainRejectsEmptySets) {
  SyntheticWorld world(1);
  const auto normal = world.batch(50, false);
  EXPECT_THROW(
      AnomalyDetector::train(std::vector<std::vector<double>>{}, normal),
      ConfigError);
  EXPECT_THROW(
      AnomalyDetector::train(normal, std::vector<std::vector<double>>{}),
      ConfigError);
}

TEST(AnomalyDetector, NormalScoresAboveAnomalousScores) {
  SyntheticWorld world(2);
  const auto det = AnomalyDetector::train(world.batch(600, false),
                                          world.batch(200, false),
                                          small_options());
  double normal_mean = 0.0;
  double anomaly_mean = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    normal_mean += det.score(world.normal_sample());
    anomaly_mean += det.score(world.anomalous_sample());
  }
  EXPECT_GT(normal_mean / n, anomaly_mean / n + 5.0);
}

TEST(AnomalyDetector, FalsePositiveRateTracksP) {
  // The paper's construction: θ_p is the p-quantile of held-out normal
  // scores, so fresh normal data should alarm at a rate near p.
  SyntheticWorld world(3);
  AnomalyDetector::Options opts = small_options();
  opts.primary_p = 0.05;
  const auto det = AnomalyDetector::train(world.batch(800, false),
                                          world.batch(400, false), opts);
  std::size_t alarms = 0;
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    alarms += det.analyze(world.normal_sample(), i).anomalous;
  }
  const double fp_rate = static_cast<double>(alarms) / n;
  EXPECT_GT(fp_rate, 0.01);
  EXPECT_LT(fp_rate, 0.12);
}

TEST(AnomalyDetector, DetectsDistributionShift) {
  SyntheticWorld world(4);
  const auto det = AnomalyDetector::train(world.batch(600, false),
                                          world.batch(300, false),
                                          small_options());
  std::size_t detected = 0;
  const std::size_t n = 200;
  for (std::size_t i = 0; i < n; ++i) {
    detected += det.analyze(world.anomalous_sample(), i).anomalous;
  }
  EXPECT_GT(static_cast<double>(detected) / n, 0.9);
}

TEST(AnomalyDetector, VerdictCarriesMetadata) {
  SyntheticWorld world(5);
  const auto det = AnomalyDetector::train(world.batch(300, false),
                                          world.batch(150, false),
                                          small_options());
  const auto v = det.analyze(world.normal_sample(), 42);
  EXPECT_EQ(v.interval_index, 42u);
  EXPECT_TRUE(std::isfinite(v.log10_density));
  EXPECT_LT(v.nearest_pattern, det.gmm().component_count());
  EXPECT_GT(v.analysis_time.count(), 0);
}

TEST(AnomalyDetector, TimingHistogramAccumulates) {
  const bool obs_was_enabled = obs::enabled();
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";

  SyntheticWorld world(6);
  auto det = AnomalyDetector::train(world.batch(300, false),
                                          world.batch(150, false),
                                          small_options());
  obs::Histogram& hist = AnomalyDetector::analysis_time_histogram();
  hist.reset();
  for (int i = 0; i < 10; ++i) (void)det.analyze(world.normal_sample());
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_GT(hist.sum(), 0.0);

  obs::set_enabled(obs_was_enabled);
}

TEST(AnomalyDetector, JournalMatchesVerdictsBitForBit) {
  // The decision journal must be a faithful record of what analyze()
  // returned — same density bits, same alarm, same pattern — plus the
  // reduced coordinates of the projection that produced that density.
  const bool obs_was_enabled = obs::enabled();
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";

  SyntheticWorld world(11);
  const auto det = AnomalyDetector::train(world.batch(500, false),
                                          world.batch(200, false),
                                          small_options());
  det.journal().clear();

  std::vector<std::vector<double>> samples;
  std::vector<Verdict> verdicts;
  for (std::uint64_t i = 0; i < 50; ++i) {
    samples.push_back(i % 5 == 4 ? world.anomalous_sample()
                                 : world.normal_sample());
    verdicts.push_back(det.analyze(samples.back(), i));
  }

  const auto records = det.journal().snapshot();
  ASSERT_EQ(records.size(), verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const auto& rec = records[i];
    const auto& v = verdicts[i];
    EXPECT_EQ(rec.interval_index, v.interval_index);
    EXPECT_EQ(rec.log10_density, v.log10_density);  // bit-for-bit
    EXPECT_EQ(rec.alarm, v.anomalous);
    EXPECT_EQ(rec.nearest_pattern, v.nearest_pattern);
    EXPECT_EQ(rec.threshold, det.primary_threshold().log10_value);
    // The stored projection is exactly what the eigenmemory produces.
    EXPECT_EQ(rec.reduced_coords, det.eigenmemory().project(samples[i]));
    if (rec.alarm) {
      EXPECT_FALSE(rec.top_cells.empty());
    } else {
      EXPECT_TRUE(rec.top_cells.empty());
    }
  }

  std::size_t journal_alarms = det.journal().alarms().size();
  std::size_t verdict_alarms = 0;
  for (const auto& v : verdicts) verdict_alarms += v.anomalous;
  EXPECT_EQ(journal_alarms, verdict_alarms);
  EXPECT_GT(verdict_alarms, 0u);  // the injected samples must trip alarms

  obs::set_enabled(obs_was_enabled);
}

TEST(AnomalyDetector, AnalyzeHeatMapOverload) {
  // Build maps whose cells follow a fixed pattern.
  Rng rng(7);
  HeatMapTrace train_maps;
  HeatMapTrace valid_maps;
  auto make_map = [&](std::uint64_t idx) {
    HeatMap m(16);
    for (std::size_t c = 0; c < 16; ++c) {
      m.increment(c, rng.poisson(50.0 + 10.0 * static_cast<double>(c % 4)));
    }
    m.interval_index = idx;
    return m;
  };
  for (std::uint64_t i = 0; i < 200; ++i) train_maps.push_back(make_map(i));
  for (std::uint64_t i = 0; i < 100; ++i) valid_maps.push_back(make_map(i));

  AnomalyDetector::Options opts;
  opts.pca.components = 4;
  opts.gmm.components = 2;
  opts.gmm.restarts = 2;
  const auto det = AnomalyDetector::train(train_maps, valid_maps, opts);
  const auto v = det.analyze(train_maps.front());
  EXPECT_EQ(v.interval_index, 0u);
  EXPECT_FALSE(v.anomalous);  // training data must look normal
}

TEST(TrafficVolumeDetector, BandContainsNormalVolumes) {
  Rng rng(8);
  std::vector<double> volumes;
  for (int i = 0; i < 500; ++i) volumes.push_back(rng.normal(1e5, 5e3));
  const TrafficVolumeDetector det(volumes, 0.01);
  EXPECT_LT(det.lower_bound(), 1e5);
  EXPECT_GT(det.upper_bound(), 1e5);
  EXPECT_FALSE(det.anomalous(1e5));
  EXPECT_TRUE(det.anomalous(2e5));
  EXPECT_TRUE(det.anomalous(1e4));
}

TEST(TrafficVolumeDetector, RejectsBadParameters) {
  EXPECT_THROW(TrafficVolumeDetector({}, 0.01), ConfigError);
  EXPECT_THROW(TrafficVolumeDetector({1.0}, 0.0), ConfigError);
  EXPECT_THROW(TrafficVolumeDetector({1.0}, 0.5), ConfigError);
}

TEST(TrafficVolumeDetector, FromTraceUsesTotals) {
  HeatMapTrace maps;
  for (int i = 0; i < 50; ++i) {
    HeatMap m(4);
    m.increment(0, 100 + (i % 5));
    maps.push_back(m);
  }
  const auto det = TrafficVolumeDetector::from_trace(maps, 0.05);
  EXPECT_FALSE(det.anomalous(maps.front()));
  HeatMap burst(4);
  burst.increment(0, 100000);
  EXPECT_TRUE(det.anomalous(burst));
}

TEST(NearestNeighborDetector, FlagsFarPoints) {
  SyntheticWorld world(9);
  const NearestNeighborDetector det(world.batch(300, false),
                                    world.batch(100, false), 0.01);
  EXPECT_FALSE(det.anomalous(world.normal_sample()));
  EXPECT_TRUE(det.anomalous(world.anomalous_sample()));
}

TEST(NearestNeighborDetector, NearestDistanceIsZeroForStoredPoint) {
  const std::vector<std::vector<double>> train = {{1.0, 2.0}, {3.0, 4.0}};
  const NearestNeighborDetector det(train, train, 0.1);
  EXPECT_DOUBLE_EQ(det.nearest_distance({1.0, 2.0}), 0.0);
}

TEST(NearestNeighborDetector, StorageCostIsRawTrainingSet) {
  SyntheticWorld world(10);
  const auto train = world.batch(100, false);
  const NearestNeighborDetector det(train, world.batch(20, false), 0.01);
  EXPECT_EQ(det.stored_maps(), 100u);
  EXPECT_EQ(det.storage_bytes(), 100u * 20u * sizeof(double));
}

TEST(NearestNeighborDetector, RejectsEmptySets) {
  const std::vector<std::vector<double>> some = {{1.0}};
  EXPECT_THROW(NearestNeighborDetector({}, some, 0.1), ConfigError);
  EXPECT_THROW(NearestNeighborDetector(some, {}, 0.1), ConfigError);
}

}  // namespace
}  // namespace mhm
