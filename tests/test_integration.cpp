// End-to-end integration tests: one trained pipeline (shared across the
// suite for speed) must reproduce the qualitative results of the paper's
// evaluation (§5.3) on all three attack scenarios, and the baselines must
// behave the way the paper argues they do.

#include <gtest/gtest.h>

#include <cmath>

#include "attacks/attacks.hpp"
#include "common/stats.hpp"
#include "pipeline/experiment.hpp"

namespace mhm {
namespace {

using pipeline::ScenarioRun;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SystemConfig cfg = pipeline::fast_test_config();
    pipeline::ProfilingPlan plan = pipeline::fast_test_plan();
    plan.runs = 4;
    plan.run_duration = 2 * kSecond;
    pipe_ = new pipeline::TrainedPipeline(pipeline::train_pipeline(
        cfg, plan, pipeline::fast_test_detector_options()));
  }
  static void TearDownTestSuite() {
    delete pipe_;
    pipe_ = nullptr;
  }

  static ScenarioRun run_attack(attacks::AttackScenario* attack,
                                std::uint64_t seed) {
    return pipeline::run_scenario(pipeline::fast_test_config(), attack,
                                  /*trigger=*/2 * kSecond,
                                  /*duration=*/4 * kSecond,
                                  pipe_->detector.get(), seed);
  }

  static double theta1() { return pipe_->theta_1.log10_value; }

  static pipeline::TrainedPipeline* pipe_;
};

pipeline::TrainedPipeline* IntegrationTest::pipe_ = nullptr;

TEST_F(IntegrationTest, TrainingRetainsAlmostAllVariance) {
  // §5.2: a handful of eigenmemories explains ~all variance.
  EXPECT_GT(pipe_->det().eigenmemory().variance_explained(), 0.99);
}

TEST_F(IntegrationTest, NormalOperationStaysNormal) {
  ScenarioRun run = pipeline::run_scenario(
      pipeline::fast_test_config(), nullptr, 0, 4 * kSecond,
      pipe_->detector.get(), /*seed=*/2024);
  const std::vector<double> dens = run.log10_densities();
  std::size_t alarms = 0;
  for (double d : dens) alarms += (d < theta1());
  EXPECT_LT(static_cast<double>(alarms) / static_cast<double>(dens.size()),
            0.08);
}

TEST_F(IntegrationTest, Scenario1AppAdditionIsDetected) {
  attacks::AppAdditionAttack attack;
  ScenarioRun run = run_attack(&attack, 31);
  const auto latency = run.detection_latency(theta1());
  ASSERT_TRUE(latency.has_value());
  EXPECT_LE(*latency, 10u);
  // Persistent abnormality while qsort runs.
  EXPECT_GT(run.detections_after_trigger(theta1()), 30u);
}

TEST_F(IntegrationTest, Scenario1AppDeletionRestoresNormality) {
  // After qsort exits, densities recover — the anomaly is the app itself.
  attacks::AppAdditionAttack attack(sim::qsort_task_spec(),
                                    /*exit_after=*/1 * kSecond);
  ScenarioRun run = run_attack(&attack, 32);
  // Post-exit window: trigger(200) + 100 intervals of qsort + margin.
  double tail_alarm_rate = 0.0;
  std::size_t tail_count = 0;
  const std::vector<double> dens = run.log10_densities();
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    if (run.maps[i].interval_index >= 320) {
      tail_alarm_rate += (dens[i] < theta1());
      ++tail_count;
    }
  }
  ASSERT_GT(tail_count, 0u);
  EXPECT_LT(tail_alarm_rate / static_cast<double>(tail_count), 0.25);
}

TEST_F(IntegrationTest, Scenario2ShellcodeIsDetected) {
  attacks::ShellcodeAttack attack("bitcount");
  ScenarioRun run = run_attack(&attack, 33);
  const auto latency = run.detection_latency(theta1());
  ASSERT_TRUE(latency.has_value());
  EXPECT_LE(*latency, 10u);
  // §5.3-2: the shellcode kills its host -> the change persists.
  EXPECT_GT(run.detections_after_trigger(theta1()), 30u);
}

TEST_F(IntegrationTest, Scenario3RootkitLoadIsDetectedByGmm) {
  attacks::RootkitAttack attack;
  ScenarioRun run = run_attack(&attack, 34);
  const auto latency = run.detection_latency(theta1());
  ASSERT_TRUE(latency.has_value());
  EXPECT_LE(*latency, 2u);  // the load burst itself is a strong anomaly
}

TEST_F(IntegrationTest, Scenario3StealthPhaseEvadesVolumeBaseline) {
  // Figure 9's argument: after the load, traffic volume looks normal, so a
  // volume-band detector sees (almost) nothing, while the GMM still scores
  // some intervals low (Figure 10).
  attacks::RootkitAttack attack(60 * kMicrosecond);
  ScenarioRun run = run_attack(&attack, 35);

  std::vector<double> normal_volumes;
  for (const auto& m : pipe_->training) {
    normal_volumes.push_back(static_cast<double>(m.total_accesses()));
  }
  const TrafficVolumeDetector volume_det(normal_volumes, 0.01);

  std::size_t volume_alarms_stealth = 0;
  std::size_t gmm_alarms_stealth = 0;
  std::size_t stealth_intervals = 0;
  const std::vector<double> dens = run.log10_densities();
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    // Stealth phase: well after the load burst.
    if (run.maps[i].interval_index >= run.trigger_interval + 5) {
      ++stealth_intervals;
      volume_alarms_stealth += volume_det.anomalous(run.traffic_volumes[i]);
      gmm_alarms_stealth += (dens[i] < theta1());
    }
  }
  ASSERT_GT(stealth_intervals, 100u);
  const double volume_rate = static_cast<double>(volume_alarms_stealth) /
                             static_cast<double>(stealth_intervals);
  const double gmm_rate = static_cast<double>(gmm_alarms_stealth) /
                          static_cast<double>(stealth_intervals);
  // Volume baseline: blind (at most noise-level alarms).
  EXPECT_LT(volume_rate, 0.05);
  // GMM: not always distinguishable (paper's own wording), but clearly
  // above the false-positive floor.
  EXPECT_GT(gmm_rate, volume_rate);
}

TEST_F(IntegrationTest, Scenario3VolumeSpikesOnlyAtLoad) {
  attacks::RootkitAttack attack;
  ScenarioRun run = run_attack(&attack, 36);
  std::vector<double> normal_volumes;
  for (const auto& m : pipe_->training) {
    normal_volumes.push_back(static_cast<double>(m.total_accesses()));
  }
  const TrafficVolumeDetector volume_det(normal_volumes, 0.005);
  // The load interval itself must trip the volume detector.
  bool load_tripped = false;
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    const auto idx = run.maps[i].interval_index;
    if (idx == run.trigger_interval || idx == run.trigger_interval + 1) {
      load_tripped |= volume_det.anomalous(run.traffic_volumes[i]);
    }
  }
  EXPECT_TRUE(load_tripped);
}

TEST_F(IntegrationTest, AnalysisTimeIsTinyComparedToInterval) {
  // §5.4: hundreds of microseconds against a 10 ms interval. Our software
  // implementation is faster still; assert the real-time property.
  ScenarioRun run = pipeline::run_scenario(
      pipeline::fast_test_config(), nullptr, 0, 1 * kSecond,
      pipe_->detector.get(), 37);
  // Judge the distribution, not each sample: under a parallel test run the
  // host OS can occasionally preempt one analysis for milliseconds.
  std::vector<double> times_ns;
  for (const auto& v : run.verdicts) {
    times_ns.push_back(static_cast<double>(v.analysis_time.count()));
  }
  EXPECT_LT(mean_of(times_ns), 1e6);                 // mean << 1 ms
  EXPECT_LT(quantile(times_ns, 0.95),
            static_cast<double>(10 * kMillisecond)); // p95 within interval
}

TEST_F(IntegrationTest, RawNearestNeighborAgreesButCostsMore) {
  // §4.1: raw-space matching works but is storage/compute prohibitive.
  std::vector<std::vector<double>> train_raw;
  for (const auto& m : pipe_->training) train_raw.push_back(m.as_vector());
  std::vector<std::vector<double>> valid_raw;
  for (const auto& m : pipe_->validation) valid_raw.push_back(m.as_vector());
  const NearestNeighborDetector nn(train_raw, valid_raw, 0.01);

  attacks::ShellcodeAttack attack("bitcount");
  ScenarioRun run = run_attack(&attack, 38);
  std::size_t nn_detections = 0;
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    if (run.maps[i].interval_index >= run.trigger_interval) {
      nn_detections += nn.anomalous(run.maps[i].as_vector());
    }
  }
  EXPECT_GT(nn_detections, 10u);
  // Storage cost: full training set vs (basis + mean + GMM params).
  const std::size_t gmm_floats =
      pipe_->det().eigenmemory().components() *
          pipe_->det().eigenmemory().input_dim() +
      pipe_->det().eigenmemory().input_dim() +
      pipe_->det().gmm().parameter_count();
  EXPECT_GT(nn.storage_bytes(), gmm_floats * sizeof(double));
}

TEST_F(IntegrationTest, DetectorScoresAreReproducible) {
  attacks::RootkitAttack a1;
  attacks::RootkitAttack a2;
  ScenarioRun r1 = run_attack(&a1, 40);
  ScenarioRun r2 = run_attack(&a2, 40);
  const std::vector<double> d1 = r1.log10_densities();
  const std::vector<double> d2 = r2.log10_densities();
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_DOUBLE_EQ(d1[i], d2[i]);
  }
}

}  // namespace
}  // namespace mhm
