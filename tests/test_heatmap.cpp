#include "core/heatmap.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace mhm {
namespace {

TEST(MhmConfig, PaperDefaultMatchesFigure1) {
  const MhmConfig cfg = MhmConfig::paper_default();
  EXPECT_EQ(cfg.base, 0xC0008000u);
  EXPECT_EQ(cfg.size, 3'013'284u);
  EXPECT_EQ(cfg.granularity, 2048u);
  EXPECT_EQ(cfg.interval, 10 * kMillisecond);
  // Figure 1: 1,472 cells.
  EXPECT_EQ(cfg.cell_count(), 1472u);
  EXPECT_EQ(cfg.shift_bits(), 11u);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MhmConfig, CellCountRoundsUp) {
  MhmConfig cfg;
  cfg.size = 2049;
  cfg.granularity = 2048;
  EXPECT_EQ(cfg.cell_count(), 2u);
  cfg.size = 2048;
  EXPECT_EQ(cfg.cell_count(), 1u);
}

TEST(MhmConfig, ValidationRejectsBadValues) {
  MhmConfig cfg = MhmConfig::paper_default();
  cfg.size = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);

  cfg = MhmConfig::paper_default();
  cfg.granularity = 1000;  // not a power of two
  EXPECT_THROW(cfg.validate(), ConfigError);

  cfg = MhmConfig::paper_default();
  cfg.interval = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(MhmConfig, ShiftBitsForVariousGranularities) {
  MhmConfig cfg;
  cfg.granularity = 512;
  EXPECT_EQ(cfg.shift_bits(), 9u);
  cfg.granularity = 8192;
  EXPECT_EQ(cfg.shift_bits(), 13u);
}

TEST(HeatMap, StartsAtZero) {
  const HeatMap map(16);
  EXPECT_EQ(map.cell_count(), 16u);
  EXPECT_EQ(map.total_accesses(), 0u);
  EXPECT_EQ(map.active_cells(), 0u);
}

TEST(HeatMap, IncrementAccumulates) {
  HeatMap map(4);
  map.increment(1);
  map.increment(1, 5);
  map.increment(3);
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[1], 6u);
  EXPECT_EQ(map[3], 1u);
  EXPECT_EQ(map.total_accesses(), 7u);
  EXPECT_EQ(map.active_cells(), 2u);
}

TEST(HeatMap, IncrementOutOfRangeThrows) {
  HeatMap map(4);
  EXPECT_THROW(map.increment(4), LogicError);
}

TEST(HeatMap, CountersSaturateAt32Bits) {
  HeatMap map(1);
  const auto max32 = std::numeric_limits<std::uint32_t>::max();
  map.increment(0, max32);
  map.increment(0, 10);  // must saturate, not wrap
  EXPECT_EQ(map[0], max32);
  map.increment(0, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(map[0], max32);
}

TEST(HeatMap, ResetClearsCounts) {
  HeatMap map(3);
  map.increment(0, 7);
  map.reset();
  EXPECT_EQ(map.total_accesses(), 0u);
  EXPECT_EQ(map.active_cells(), 0u);
}

TEST(HeatMap, AsVectorPreservesCounts) {
  HeatMap map(3);
  map.increment(0, 2);
  map.increment(2, 9);
  const auto v = map.as_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 9.0);
}

TEST(HeatMap, SummarizeMentionsKeyFields) {
  HeatMap map(8);
  map.interval_index = 42;
  map.increment(3, 5);
  const std::string s = summarize(map);
  EXPECT_NE(s.find("interval=42"), std::string::npos);
  EXPECT_NE(s.find("cells=8"), std::string::npos);
  EXPECT_NE(s.find("total=5"), std::string::npos);
  EXPECT_NE(s.find("active=1"), std::string::npos);
}

}  // namespace
}  // namespace mhm
