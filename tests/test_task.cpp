#include "sim/task.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mhm::sim {
namespace {

TEST(TaskSpec, PaperTaskSetMatchesSection51Table) {
  const auto tasks = paper_task_set();
  ASSERT_EQ(tasks.size(), 4u);

  EXPECT_EQ(tasks[0].name, "FFT");
  EXPECT_EQ(tasks[0].exec_time, 2 * kMillisecond);
  EXPECT_EQ(tasks[0].period, 10 * kMillisecond);

  EXPECT_EQ(tasks[1].name, "bitcount");
  EXPECT_EQ(tasks[1].exec_time, 3 * kMillisecond);
  EXPECT_EQ(tasks[1].period, 20 * kMillisecond);

  EXPECT_EQ(tasks[2].name, "basicmath");
  EXPECT_EQ(tasks[2].exec_time, 9 * kMillisecond);
  EXPECT_EQ(tasks[2].period, 50 * kMillisecond);

  EXPECT_EQ(tasks[3].name, "sha");
  EXPECT_EQ(tasks[3].exec_time, 25 * kMillisecond);
  EXPECT_EQ(tasks[3].period, 100 * kMillisecond);
}

TEST(TaskSpec, PaperSystemLoadIs78Percent) {
  // §5.1 footnote: "the system load (78%)".
  EXPECT_NEAR(total_utilization(paper_task_set()), 0.78, 1e-12);
}

TEST(TaskSpec, PaperHyperperiodIs100ms) {
  EXPECT_EQ(hyperperiod(paper_task_set()), 100 * kMillisecond);
}

TEST(TaskSpec, QsortMatchesSection53) {
  // §5.3-1: qsort exec time 6 ms, period 30 ms.
  const TaskSpec q = qsort_task_spec();
  EXPECT_EQ(q.name, "qsort");
  EXPECT_EQ(q.exec_time, 6 * kMillisecond);
  EXPECT_EQ(q.period, 30 * kMillisecond);
  EXPECT_NEAR(q.utilization(), 0.2, 1e-12);
}

TEST(TaskSpec, ShaIsReadHeavy) {
  // §5.3-3 relies on sha using "many read system calls".
  const auto tasks = paper_task_set();
  const TaskSpec& sha = tasks[3];
  double read_calls = 0.0;
  for (const auto& sc : sha.syscalls) {
    if (sc.service == "sys_read") read_calls += sc.calls_per_job;
  }
  EXPECT_GE(read_calls, 50.0);
}

TEST(TaskSpec, UtilizationComputation) {
  TaskSpec t;
  t.name = "t";
  t.exec_time = 5 * kMillisecond;
  t.period = 20 * kMillisecond;
  EXPECT_DOUBLE_EQ(t.utilization(), 0.25);
}

TEST(TaskSpec, ValidationCatchesBadSpecs) {
  TaskSpec t;
  t.name = "";
  t.exec_time = 1;
  t.period = 2;
  EXPECT_THROW(t.validate(), ConfigError);

  t.name = "x";
  t.period = 0;
  EXPECT_THROW(t.validate(), ConfigError);

  t.period = 10;
  t.exec_time = 0;
  EXPECT_THROW(t.validate(), ConfigError);

  t.exec_time = 11;  // exceeds period
  EXPECT_THROW(t.validate(), ConfigError);
}

TEST(TaskSpec, ValidationCatchesBadSyscallWindows) {
  TaskSpec t;
  t.name = "x";
  t.exec_time = 1 * kMillisecond;
  t.period = 10 * kMillisecond;
  t.syscalls = {{.service = "sys_read", .calls_per_job = 1,
                 .window_begin = 0.8, .window_end = 0.2}};
  EXPECT_THROW(t.validate(), ConfigError);

  t.syscalls = {{.service = "sys_read", .calls_per_job = -1.0}};
  EXPECT_THROW(t.validate(), ConfigError);

  t.syscalls = {{.service = "sys_read", .calls_per_job = 1,
                 .window_begin = 0.0, .window_end = 1.5}};
  EXPECT_THROW(t.validate(), ConfigError);
}

TEST(TaskSpec, HyperperiodOfCoprimePeriods) {
  TaskSpec a;
  a.name = "a";
  a.exec_time = 1;
  a.period = 3;
  TaskSpec b;
  b.name = "b";
  b.exec_time = 1;
  b.period = 7;
  EXPECT_EQ(hyperperiod({a, b}), 21u);
}

TEST(TaskSpec, UserTextRegionsDoNotOverlapKernel) {
  for (const auto& t : paper_task_set()) {
    EXPECT_LT(t.user_text_base + t.user_text_size, 0xC0008000u) << t.name;
  }
  const TaskSpec q = qsort_task_spec();
  EXPECT_LT(q.user_text_base + q.user_text_size, 0xC0008000u);
}

TEST(TaskSpec, DistinctUserTextRegionsPerTask) {
  auto tasks = paper_task_set();
  tasks.push_back(qsort_task_spec());
  tasks.push_back(shell_task_spec());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t j = i + 1; j < tasks.size(); ++j) {
      const bool overlap =
          tasks[i].user_text_base < tasks[j].user_text_base + tasks[j].user_text_size &&
          tasks[j].user_text_base < tasks[i].user_text_base + tasks[i].user_text_size;
      EXPECT_FALSE(overlap) << tasks[i].name << " vs " << tasks[j].name;
    }
  }
}

}  // namespace
}  // namespace mhm::sim
