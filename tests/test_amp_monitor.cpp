#include "pipeline/amp_monitor.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "common/error.hpp"
#include "pipeline/experiment.hpp"

namespace mhm::pipeline {
namespace {

class AmpMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One detector per OS image: instance A runs the MiBench-like set,
    // instance B the avionics set.
    sim::SystemConfig cfg_a = fast_test_config();
    pipe_a_ = new TrainedPipeline(train_pipeline(
        cfg_a, fast_test_plan(), fast_test_detector_options()));

    sim::SystemConfig cfg_b = fast_test_config();
    cfg_b.tasks = sim::avionics_task_set();
    ProfilingPlan plan_b = fast_test_plan();
    plan_b.seed_base = 500;
    AnomalyDetector::Options opts_b = fast_test_detector_options();
    opts_b.gmm.components = 4;
    pipe_b_ = new TrainedPipeline(train_pipeline(cfg_b, plan_b, opts_b));
  }
  static void TearDownTestSuite() {
    delete pipe_a_;
    delete pipe_b_;
    pipe_a_ = nullptr;
    pipe_b_ = nullptr;
  }

  static TrainedPipeline* pipe_a_;
  static TrainedPipeline* pipe_b_;
};

TrainedPipeline* AmpMonitorTest::pipe_a_ = nullptr;
TrainedPipeline* AmpMonitorTest::pipe_b_ = nullptr;

TEST_F(AmpMonitorTest, RejectsEmptyAndMismatchedConfigs) {
  AmpMonitor monitor;
  EXPECT_THROW(monitor.run_all(1 * kSecond), ConfigError);

  sim::SystemConfig cfg_a = fast_test_config();
  sim::System sys_a(cfg_a);
  monitor.attach(sys_a, pipe_a_->det());

  sim::SystemConfig cfg_b = fast_test_config();
  cfg_b.monitor.interval = 20 * kMillisecond;  // mismatched interval
  sim::System sys_b(cfg_b);
  EXPECT_THROW(monitor.attach(sys_b, pipe_a_->det()), ConfigError);
}

TEST_F(AmpMonitorTest, MonitorsTwoInstancesIndependently) {
  AmpMonitor monitor;
  sim::SystemConfig cfg_a = fast_test_config();
  cfg_a.seed = 71;
  sim::System sys_a(cfg_a);
  monitor.attach(sys_a, pipe_a_->det(), "mibench_os");

  sim::SystemConfig cfg_b = fast_test_config();
  cfg_b.tasks = sim::avionics_task_set();
  cfg_b.seed = 72;
  sim::System sys_b(cfg_b);
  monitor.attach(sys_b, pipe_b_->det(), "avionics_os");

  EXPECT_EQ(monitor.instance_count(), 2u);
  EXPECT_EQ(monitor.name(0), "mibench_os");
  EXPECT_EQ(monitor.name(1), "avionics_os");

  monitor.run_all(2 * kSecond);
  EXPECT_EQ(monitor.verdicts(0).size(), 200u);
  EXPECT_EQ(monitor.verdicts(1).size(), 200u);
  // Normal operation on both: alarms stay near the calibration floor.
  EXPECT_LT(monitor.alarms().size(), 40u);
}

TEST_F(AmpMonitorTest, AttackOnOneInstanceAlarmsOnlyThatInstance) {
  AmpMonitor monitor;
  sim::SystemConfig cfg_a = fast_test_config();
  cfg_a.seed = 81;
  sim::System sys_a(cfg_a);
  monitor.attach(sys_a, pipe_a_->det(), "victim");

  sim::SystemConfig cfg_b = fast_test_config();
  cfg_b.tasks = sim::avionics_task_set();
  cfg_b.seed = 82;
  sim::System sys_b(cfg_b);
  monitor.attach(sys_b, pipe_b_->det(), "bystander");

  attacks::ShellcodeAttack attack("bitcount");
  attack.arm(sys_a, 1 * kSecond);
  monitor.run_all(3 * kSecond);

  std::size_t victim_post = 0;
  std::size_t bystander_post = 0;
  for (const auto& alarm : monitor.alarms()) {
    if (alarm.interval_index < 100) continue;
    (alarm.instance == 0 ? victim_post : bystander_post) += 1;
  }
  EXPECT_GT(victim_post, 20u);
  EXPECT_LT(bystander_post, victim_post / 4);
}

TEST_F(AmpMonitorTest, BudgetAccountingScalesWithInstances) {
  AmpMonitor monitor;
  std::vector<std::unique_ptr<sim::System>> systems;
  for (int i = 0; i < 3; ++i) {
    sim::SystemConfig cfg = fast_test_config();
    cfg.seed = 90 + i;
    systems.push_back(std::make_unique<sim::System>(cfg));
    monitor.attach(*systems.back(), pipe_a_->det());
  }
  monitor.run_all(1 * kSecond);
  // Sum of three software analyses is far below the 10 ms interval. Judge
  // the mean, not every interval: a parallel test runner can preempt an
  // individual analysis for milliseconds.
  EXPECT_GT(monitor.mean_total_analysis_ns_per_interval(), 0.0);
  EXPECT_LT(monitor.mean_total_analysis_ns_per_interval(),
            static_cast<double>(10 * kMillisecond));
  EXPECT_LT(monitor.budget_overruns(), 5u);
}

TEST_F(AmpMonitorTest, AccessorsValidateInstanceIndex) {
  AmpMonitor monitor;
  sim::SystemConfig cfg = fast_test_config();
  sim::System sys(cfg);
  monitor.attach(sys, pipe_a_->det());
  EXPECT_THROW(monitor.verdicts(1), LogicError);
  EXPECT_THROW(monitor.name(1), LogicError);
}

}  // namespace
}  // namespace mhm::pipeline
