#include "hw/address_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "hw/memometer.hpp"
#include "hw/trace_recorder.hpp"

namespace mhm::hw {
namespace {

TEST(AddressTrace, ParsesMinimalLines) {
  std::istringstream in("0 0x1000\n10 4096\n");
  MemoryBus bus;
  TraceRecorder rec;
  bus.attach(&rec);
  const auto stats = replay_address_trace(in, bus);
  EXPECT_EQ(stats.lines_parsed, 2u);
  EXPECT_EQ(stats.accesses, 2u);
  ASSERT_EQ(rec.bursts().size(), 2u);
  EXPECT_EQ(rec.bursts()[0].base, 0x1000u);
  EXPECT_EQ(rec.bursts()[1].base, 4096u);
  EXPECT_EQ(rec.bursts()[1].time, 10u);
  EXPECT_EQ(rec.bursts()[0].size_bytes, 4u);
  EXPECT_EQ(rec.bursts()[0].sweeps, 1u);
}

TEST(AddressTrace, ParsesOptionalSizeAndSweeps) {
  std::istringstream in("5 0x2000 64\n7 0x3000 128 3\n");
  MemoryBus bus;
  TraceRecorder rec;
  bus.attach(&rec);
  const auto stats = replay_address_trace(in, bus);
  EXPECT_EQ(rec.bursts()[0].size_bytes, 64u);
  EXPECT_EQ(rec.bursts()[0].sweeps, 1u);
  EXPECT_EQ(rec.bursts()[1].size_bytes, 128u);
  EXPECT_EQ(rec.bursts()[1].sweeps, 3u);
  EXPECT_EQ(stats.accesses, 16u + 96u);
  EXPECT_EQ(stats.first_time, 5u);
  EXPECT_EQ(stats.last_time, 7u);
}

TEST(AddressTrace, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n\n   \n0 0x1000\n# another\n1 0x1004\n");
  MemoryBus bus;
  const auto stats = replay_address_trace(in, bus);
  EXPECT_EQ(stats.lines_parsed, 2u);
}

TEST(AddressTrace, HandlesWindowsLineEndings) {
  std::istringstream in("0 0x1000 8 2\r\n1 0x1008\r\n");
  MemoryBus bus;
  TraceRecorder rec;
  bus.attach(&rec);
  const auto stats = replay_address_trace(in, bus);
  EXPECT_EQ(stats.lines_parsed, 2u);
  EXPECT_EQ(rec.bursts()[0].sweeps, 2u);
}

TEST(AddressTrace, RejectsMalformedLines) {
  auto expect_throw = [](const std::string& text) {
    std::istringstream in(text);
    MemoryBus bus;
    EXPECT_THROW(replay_address_trace(in, bus), ConfigError) << text;
  };
  expect_throw("justoneword\n");
  expect_throw("0\n");
  expect_throw("notanumber 0x1000\n");
  expect_throw("0 nothex\n");
  expect_throw("0 0x1000 bad\n");
  expect_throw("0 0x1000 4 bad\n");
  expect_throw("0 0x1000 4 1 extra\n");
  expect_throw("0 0x1000 0\n");    // zero size
  expect_throw("0 0x1000 4 0\n");  // zero sweeps
}

TEST(AddressTrace, RejectsTimeGoingBackwards) {
  std::istringstream in("10 0x1000\n5 0x1000\n");
  MemoryBus bus;
  EXPECT_THROW(replay_address_trace(in, bus), ConfigError);
}

TEST(AddressTrace, ErrorMessagesCarryLineNumbers) {
  std::istringstream in("0 0x1000\n# ok\nbroken\n");
  MemoryBus bus;
  try {
    replay_address_trace(in, bus);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(AddressTrace, FeedsMemometerEndToEnd) {
  // Simulated external tool output: fetches inside and outside a monitored
  // 64 KB region at 0x1000; the Memometer must aggregate exactly as if the
  // traffic were live.
  MhmConfig cfg;
  cfg.base = 0x1000;
  cfg.size = 64 * 1024;
  cfg.granularity = 4096;
  cfg.interval = 10 * kMillisecond;

  std::ostringstream trace;
  trace << "# fetches in cell 2 and cell 5, one outside\n";
  trace << 1 * kMillisecond << " 0x" << std::hex << (0x1000 + 2 * 4096)
        << std::dec << " 4 10\n";
  trace << 2 * kMillisecond << " 0x" << std::hex << (0x1000 + 5 * 4096)
        << std::dec << " 8 1\n";
  trace << 3 * kMillisecond << " 0xF0000000\n";
  trace << 11 * kMillisecond << " 0x1000\n";  // next interval

  std::vector<HeatMap> maps;
  MemoryBus bus;
  Memometer meter(cfg, 0, [&](const HeatMap& m) { maps.push_back(m); });
  bus.attach(&meter);

  std::istringstream in(trace.str());
  const auto stats = replay_address_trace(in, bus);
  meter.finish(stats.last_time, /*deliver_partial=*/true);

  ASSERT_EQ(maps.size(), 2u);
  EXPECT_EQ(maps[0][2], 10u);
  EXPECT_EQ(maps[0][5], 2u);
  EXPECT_EQ(maps[0].total_accesses(), 12u);
  EXPECT_EQ(meter.accesses_filtered_out(), 1u);
  EXPECT_EQ(maps[1][0], 1u);
}

TEST(AddressTrace, RoundTripThroughWriter) {
  // Capture a synthetic stream, export it as text, re-import, compare.
  std::vector<AccessBurst> bursts = {
      {.time = 0, .base = 0x1000, .size_bytes = 4, .sweeps = 1},
      {.time = 100, .base = 0xC0008000, .size_bytes = 512, .sweeps = 7},
      {.time = 100, .base = 0xFFFF0000, .size_bytes = 32, .sweeps = 2},
  };
  std::ostringstream text;
  write_address_trace(bursts, text);

  std::istringstream in(text.str());
  MemoryBus bus;
  TraceRecorder rec;
  bus.attach(&rec);
  const auto stats = replay_address_trace(in, bus);
  EXPECT_EQ(stats.lines_parsed, bursts.size());
  ASSERT_EQ(rec.bursts().size(), bursts.size());
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    EXPECT_EQ(rec.bursts()[i].time, bursts[i].time) << i;
    EXPECT_EQ(rec.bursts()[i].base, bursts[i].base) << i;
    EXPECT_EQ(rec.bursts()[i].size_bytes, bursts[i].size_bytes) << i;
    EXPECT_EQ(rec.bursts()[i].sweeps, bursts[i].sweeps) << i;
  }
}

TEST(AddressTrace, MissingFileThrows) {
  MemoryBus bus;
  EXPECT_THROW(replay_address_trace_file("/nonexistent_zzz/trace.txt", bus),
               ConfigError);
}

TEST(AddressTrace, EmptyInputIsValid) {
  std::istringstream in("");
  MemoryBus bus;
  const auto stats = replay_address_trace(in, bus);
  EXPECT_EQ(stats.lines_parsed, 0u);
  EXPECT_EQ(stats.accesses, 0u);
}

}  // namespace
}  // namespace mhm::hw
