#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/rng.hpp"

namespace mhm {
namespace {

/// Small trained detector shared across tests.
struct Fixture {
  AnomalyDetector detector;

  static Fixture make() {
    Rng rng(1);
    auto sample = [&](double shift) {
      std::vector<double> x(12);
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = shift + 10.0 * static_cast<double>(i % 4) + rng.normal(0.0, 1.0);
      }
      return x;
    };
    std::vector<std::vector<double>> train;
    std::vector<std::vector<double>> valid;
    for (int i = 0; i < 300; ++i) train.push_back(sample(i % 3 * 5.0));
    for (int i = 0; i < 150; ++i) valid.push_back(sample(i % 3 * 5.0));
    AnomalyDetector::Options opts;
    opts.pca.components = 4;
    opts.gmm.components = 3;
    opts.gmm.restarts = 2;
    return Fixture{AnomalyDetector::train(train, valid, opts)};
  }
};

TEST(ModelIo, RoundTripPreservesScores) {
  const Fixture fx = Fixture::make();
  const DetectorModel model = DetectorModel::from_detector(fx.detector);

  std::stringstream buffer;
  save_model(model, buffer);
  const DetectorModel loaded = load_model(buffer);
  const AnomalyDetector restored = loaded.to_detector();

  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> probe(12);
    for (double& v : probe) v = rng.uniform(0.0, 40.0);
    EXPECT_DOUBLE_EQ(fx.detector.score(probe), restored.score(probe))
        << "probe " << i;
  }
  EXPECT_DOUBLE_EQ(fx.detector.primary_threshold().log10_value,
                   restored.primary_threshold().log10_value);
  EXPECT_DOUBLE_EQ(fx.detector.primary_threshold().p,
                   restored.primary_threshold().p);
}

TEST(ModelIo, RoundTripPreservesEigenmemory) {
  const Fixture fx = Fixture::make();
  std::stringstream buffer;
  save_eigenmemory(fx.detector.eigenmemory(), buffer);
  const Eigenmemory em = load_eigenmemory(buffer);
  EXPECT_EQ(em.input_dim(), fx.detector.eigenmemory().input_dim());
  EXPECT_EQ(em.components(), fx.detector.eigenmemory().components());
  EXPECT_EQ(em.mean(), fx.detector.eigenmemory().mean());
  EXPECT_EQ(em.eigenvalues(), fx.detector.eigenmemory().eigenvalues());
  EXPECT_DOUBLE_EQ(em.variance_explained(),
                   fx.detector.eigenmemory().variance_explained());
}

TEST(ModelIo, RoundTripPreservesGmm) {
  const Fixture fx = Fixture::make();
  std::stringstream buffer;
  save_gmm(fx.detector.gmm(), buffer);
  const Gmm gmm = load_gmm(buffer);
  ASSERT_EQ(gmm.component_count(), fx.detector.gmm().component_count());
  const std::vector<double> probe(4, 1.0);
  EXPECT_DOUBLE_EQ(gmm.log_density(probe),
                   fx.detector.gmm().log_density(probe));
}

TEST(ModelIo, FileRoundTrip) {
  const Fixture fx = Fixture::make();
  const std::string path =
      (std::filesystem::temp_directory_path() / "mhm_model_test.bin").string();
  save_model_file(DetectorModel::from_detector(fx.detector), path);
  const AnomalyDetector restored = load_model_file(path).to_detector();
  const std::vector<double> probe(12, 3.0);
  EXPECT_DOUBLE_EQ(fx.detector.score(probe), restored.score(probe));
  std::filesystem::remove(path);
}

TEST(ModelIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOPE and then some bytes";
  EXPECT_THROW(load_model(buffer), SerializationError);
}

TEST(ModelIo, RejectsUnsupportedVersion) {
  const Fixture fx = Fixture::make();
  std::stringstream buffer;
  save_model(DetectorModel::from_detector(fx.detector), buffer);
  std::string bytes = buffer.str();
  bytes[4] = 0x7F;  // clobber the version field
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_model(corrupted), SerializationError);
}

TEST(ModelIo, RejectsTruncatedStream) {
  const Fixture fx = Fixture::make();
  std::stringstream buffer;
  save_model(DetectorModel::from_detector(fx.detector), buffer);
  const std::string bytes = buffer.str();
  for (std::size_t cut : {std::size_t{3}, std::size_t{9}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(load_model(truncated), SerializationError) << "cut=" << cut;
  }
}

TEST(ModelIo, RejectsCorruptGmmWeights) {
  // Corrupt the first component's weight bits inside a serialized GMM
  // payload: load_gmm revalidates through from_components and must reject.
  const Fixture fx = Fixture::make();
  std::stringstream buffer;
  save_gmm(fx.detector.gmm(), buffer);
  std::string bytes = buffer.str();
  // Layout: tag(4) + dim(8) + count(8) + weight(8)...; overwrite the weight
  // with the bits of 7.0 so weights no longer sum to 1.
  const double bogus = 7.0;
  std::memcpy(bytes.data() + 20, &bogus, sizeof bogus);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_gmm(corrupted), SerializationError);
}

TEST(ModelIo, MissingFileThrowsConfigError) {
  EXPECT_THROW(load_model_file("/nonexistent_zzz/model.bin"), ConfigError);
  const Fixture fx = Fixture::make();
  EXPECT_THROW(save_model_file(DetectorModel::from_detector(fx.detector),
                               "/nonexistent_zzz/model.bin"),
               ConfigError);
}

TEST(GmmFromComponents, ValidatesInput) {
  EXPECT_THROW(Gmm::from_components({}), ConfigError);

  GmmComponent c;
  c.mean = {0.0, 0.0};
  c.covariance = linalg::Matrix::identity(2);
  c.weight = 0.7;  // does not sum to 1
  EXPECT_THROW(Gmm::from_components({c}), ConfigError);

  c.weight = 1.0;
  EXPECT_NO_THROW(Gmm::from_components({c}));

  GmmComponent bad = c;
  bad.covariance = linalg::Matrix::identity(3);  // dimension mismatch
  bad.weight = 0.5;
  GmmComponent good = c;
  good.weight = 0.5;
  EXPECT_THROW(Gmm::from_components({good, bad}), ConfigError);
}

TEST(EigenmemoryFromParts, ValidatesInput) {
  linalg::Matrix basis(1, 3, 0.0);
  basis(0, 0) = 1.0;
  EXPECT_NO_THROW(
      Eigenmemory::from_parts({0.0, 0.0, 0.0}, basis, {2.0}, {2.0, 1.0, 0.0}));

  // Non-unit basis row.
  linalg::Matrix bad_basis(1, 3, 0.0);
  bad_basis(0, 0) = 2.0;
  EXPECT_THROW(Eigenmemory::from_parts({0.0, 0.0, 0.0}, bad_basis, {2.0},
                                       {2.0, 1.0, 0.0}),
               ConfigError);

  // Mismatched widths.
  EXPECT_THROW(
      Eigenmemory::from_parts({0.0, 0.0}, basis, {2.0}, {2.0, 1.0, 0.0}),
      ConfigError);
  // Negative eigenvalue.
  EXPECT_THROW(
      Eigenmemory::from_parts({0.0, 0.0, 0.0}, basis, {-1.0}, {2.0, 1.0, 0.0}),
      ConfigError);
  // Spectrum shorter than retained values.
  EXPECT_THROW(Eigenmemory::from_parts({0.0, 0.0, 0.0}, basis, {2.0}, {}),
               ConfigError);
}

TEST(AnomalyDetectorAssemble, ValidatesDimensions) {
  const Fixture fx = Fixture::make();
  // GMM over the wrong dimensionality must be rejected.
  GmmComponent c;
  c.mean = {0.0, 0.0};  // 2-D, but the eigenmemory has 4 components
  c.covariance = linalg::Matrix::identity(2);
  c.weight = 1.0;
  EXPECT_THROW(
      AnomalyDetector::assemble(fx.detector.eigenmemory(),
                                Gmm::from_components({c}),
                                ThresholdCalibrator({-1.0, -2.0}), 0.01),
      ConfigError);
}

}  // namespace
}  // namespace mhm
