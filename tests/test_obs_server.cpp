// The externally visible observability surface: the Chrome trace exporter,
// the loopback HTTP monitoring endpoint, and the flight recorder's dump
// files. Everything here drives the same code paths an operator would —
// real sockets, real files — at test scale.

#include "obs/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/history.hpp"
#include "obs/incident.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace mhm::obs {
namespace {

/// Minimal recursive-descent JSON validity checker — enough to assert the
/// exporters emit well-formed documents without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Enables obs for the test body and restores the previous state after.
class EnabledGuard {
 public:
  EnabledGuard() : was_(enabled()) { set_enabled(true); }
  ~EnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

SpanRecord make_span(std::uint64_t id, std::uint64_t parent,
                     std::uint64_t start_ns, std::uint64_t duration_ns,
                     const char* name, std::size_t shard = 0) {
  SpanRecord rec;
  rec.id = id;
  rec.parent_id = parent;
  rec.name = name;
  rec.thread_shard = shard;
  rec.start_ns = start_ns;
  rec.duration_ns = duration_ns;
  return rec;
}

TEST(ChromeTrace, EmptyBufferIsValidJson) {
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  EnabledGuard guard;
  SpanBuffer::instance().clear();
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, CompleteEventsCarryMicrosecondTimes) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  SpanBuffer& buf = SpanBuffer::instance();
  buf.clear();
  // Parent opens at 10µs for 5µs; the child nests inside it. The exporter
  // rebases on the earliest start, so the parent lands at ts=0.
  buf.record(make_span(1, 0, 10'000, 5'000, "parent"));
  buf.record(make_span(2, 1, 11'500, 1'000, "child"));

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.000"), std::string::npos);
  // Child: 1.5µs after the epoch, 1µs long, nested under span id 1.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"id\":2,\"parent\":1}"), std::string::npos);
  // Perfetto needs the process-name metadata event.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  buf.clear();
}

TEST(ChromeTrace, RealSpansNestByParentId) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  SpanBuffer& buf = SpanBuffer::instance();
  buf.clear();
  {
    SpanScope outer("outer_scope");
    SpanScope inner("inner_scope");
    (void)outer;
    (void)inner;
  }
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  const auto records = buf.snapshot();
  ASSERT_EQ(records.size(), 2u);
  // The ring holds [inner, outer] completion order; the inner span must
  // point at the outer one.
  EXPECT_EQ(records[0].parent_id, records[1].id);
  std::ostringstream want;
  want << "\"args\":{\"id\":" << records[0].id << ",\"parent\":"
       << records[0].parent_id << "}";
  EXPECT_NE(json.find(want.str()), std::string::npos) << json;
  buf.clear();
}

TEST(ChromeTrace, ConcurrentExportStaysValidAndNestsPerThread) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  SpanBuffer& buf = SpanBuffer::instance();
  buf.clear();

  // Four worker threads each emit known outer/inner span pairs while two
  // exporter threads serialize the ring — every concurrently exported
  // document must already be well-formed, not just the final one.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kPairsPerWorker = 32;
  static const char* kOuterNames[kWorkers] = {"w0.outer", "w1.outer",
                                              "w2.outer", "w3.outer"};
  static const char* kInnerNames[kWorkers] = {"w0.inner", "w1.inner",
                                              "w2.inner", "w3.inner"};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([w] {
      for (std::size_t i = 0; i < kPairsPerWorker; ++i) {
        SpanScope outer(kOuterNames[w]);
        SpanScope inner(kInnerNames[w]);
        (void)outer;
        (void)inner;
      }
    });
  }
  for (int e = 0; e < 2; ++e) {
    threads.emplace_back([] {
      for (int i = 0; i < 8; ++i) {
        const std::string json = chrome_trace_json();
        EXPECT_TRUE(JsonChecker(json).valid()) << json;
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    EXPECT_NE(json.find(kInnerNames[w]), std::string::npos);
  }

  // Parent linkage is per-thread: every wN.inner span must point at a
  // wN.outer span of the same worker, never at another thread's span.
  const std::vector<SpanRecord> records = buf.snapshot();
  ASSERT_EQ(records.size(), kWorkers * kPairsPerWorker * 2);
  std::size_t inners = 0;
  for (const SpanRecord& rec : records) {
    const std::string name = rec.name;
    if (name.find(".inner") == std::string::npos) continue;
    ++inners;
    ASSERT_NE(rec.parent_id, 0u) << name;
    const auto parent =
        std::find_if(records.begin(), records.end(),
                     [&](const SpanRecord& r) { return r.id == rec.parent_id; });
    ASSERT_NE(parent, records.end()) << name;
    EXPECT_EQ(std::string(parent->name),
              name.substr(0, 2) + ".outer") << name;
  }
  EXPECT_EQ(inners, kWorkers * kPairsPerWorker);
  buf.clear();
}

/// Blocking loopback GET; returns the full response (headers + body).
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get_path(std::uint16_t port, const std::string& path) {
  return http_get(port, "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

class MonitorServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
    MonitorServer::Options opts;  // port 0: kernel picks a free one
    ASSERT_TRUE(server_.start(opts));
    ASSERT_TRUE(server_.running());
    ASSERT_NE(server_.port(), 0);
  }
  void TearDown() override { server_.stop(); }

  MonitorServer server_;
};

TEST_F(MonitorServerTest, MetricsServesPrometheusText) {
  Registry::instance().counter("test.server.hits", "test counter").add(3);
  const std::string response = get_path(server_.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("# TYPE mhm_test_server_hits counter"),
            std::string::npos);
  EXPECT_NE(body.find("mhm_test_server_hits 3"), std::string::npos);
}

TEST_F(MonitorServerTest, HealthzReportsLivenessJson) {
  const std::string response = get_path(server_.port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(body.find("\"last_analysis_age_seconds\""), std::string::npos);
}

TEST_F(MonitorServerTest, StatusSnapshotIsValidJson) {
  const std::string body = body_of(get_path(server_.port(), "/status"));
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"intervals_analyzed\""), std::string::npos);
  EXPECT_NE(body.find("\"alarms\""), std::string::npos);
}

TEST_F(MonitorServerTest, JournalServesTailAsJsonLines) {
  auto journal = std::make_shared<DecisionJournal>(16);
  for (std::uint64_t i = 0; i < 8; ++i) {
    DecisionRecord rec;
    rec.interval_index = i;
    rec.log10_density = -20.0 - static_cast<double>(i);
    rec.threshold = -30.0;
    rec.alarm = i == 7;
    journal->append_swap(rec);
  }
  server_.set_journal(journal);

  const std::string response = get_path(server_.port(), "/journal?tail=3");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const std::string body = body_of(response);
  std::istringstream lines(body);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3u);
  // The tail must end with the newest record.
  EXPECT_NE(body.find("\"interval\":7"), std::string::npos);
  EXPECT_NE(body.find("\"alarm\":true"), std::string::npos);

  // Detaching the journal turns the route into a 404.
  server_.set_journal(nullptr);
  EXPECT_NE(get_path(server_.port(), "/journal").find("404"),
            std::string::npos);
}

TEST_F(MonitorServerTest, ModelServesModelHealthJson) {
  // 404 until a monitor is attached.
  EXPECT_NE(get_path(server_.port(), "/model").find("404"),
            std::string::npos);

  std::vector<double> training;
  training.reserve(64);
  for (int i = 0; i < 64; ++i) training.push_back(-25.0 + 0.1 * i);
  ModelHealthOptions opts;
  opts.min_intervals = 8;
  auto monitor = std::make_shared<ModelHealthMonitor>(
      training, std::vector<double>{0.6, 0.4}, opts);
  const std::vector<double> row = {1.0, 2.0, 3.0};
  for (std::uint64_t n = 0; n < 12; ++n) {
    monitor->observe(-22.0, 0.25, n % 2, /*alarm=*/false, n, row);
  }
  server_.set_model_health(monitor);

  const std::string response = get_path(server_.port(), "/model");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"intervals\":12"), std::string::npos);
  EXPECT_NE(body.find("\"drift\":"), std::string::npos);
  EXPECT_NE(body.find("\"components\":"), std::string::npos);
  EXPECT_NE(body.find("\"heat_row\":"), std::string::npos);

  // Detaching turns the route back into a 404.
  server_.set_model_health(nullptr);
  EXPECT_NE(get_path(server_.port(), "/model").find("404"),
            std::string::npos);
}

TEST_F(MonitorServerTest, TraceServesChromeTraceJson) {
  SpanBuffer::instance().clear();
  SpanBuffer::instance().record(make_span(7, 0, 1'000, 2'000, "served_span"));
  const std::string body = body_of(get_path(server_.port(), "/trace"));
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"served_span\""), std::string::npos);
  SpanBuffer::instance().clear();
}

TEST_F(MonitorServerTest, ProfileServesJsonAndCollapsedFormats) {
  // The profiler needs at least one recorded zone so both formats have
  // content; the route itself is always live (like /version).
  const bool prof_was = prof::prof_enabled();
  prof::set_prof_enabled(true);
  prof::reset();
  {
    PROF_ZONE(kAnalyze);
    PROF_ZONE(kScoreProject);
    volatile std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 2'000'000; ++i) acc = acc + i;
  }

  const std::string response = get_path(server_.port(), "/profile");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"source\":"), std::string::npos);
  EXPECT_NE(body.find("\"stage\":\"score.project\""), std::string::npos);
  EXPECT_NE(body.find("\"attributed_fraction\":"), std::string::npos);

  const std::string collapsed_response =
      get_path(server_.port(), "/profile?format=collapsed");
  EXPECT_NE(collapsed_response.find("200 OK"), std::string::npos);
  EXPECT_NE(collapsed_response.find("text/plain"), std::string::npos);
  EXPECT_NE(body_of(collapsed_response).find("analyze;score.project "),
            std::string::npos)
      << body_of(collapsed_response);

  // An unknown format is the caller's bug: 400 with a JSON error.
  const std::string bad = get_path(server_.port(), "/profile?format=svg");
  EXPECT_NE(bad.find("400"), std::string::npos);
  EXPECT_NE(body_of(bad).find("\"error\":"), std::string::npos);

  prof::reset();
  prof::set_prof_enabled(prof_was);
}

TEST_F(MonitorServerTest, RejectsUnknownRoutesMethodsAndOversizedRequests) {
  EXPECT_NE(get_path(server_.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_get(server_.port(),
                     "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("405"),
            std::string::npos);
  // 16 KB of headers blows the 8 KB request bound.
  const std::string huge = "GET /metrics HTTP/1.1\r\nX-Pad: " +
                           std::string(16 * 1024, 'a') + "\r\n\r\n";
  EXPECT_NE(http_get(server_.port(), huge).find("431"), std::string::npos);
}

TEST_F(MonitorServerTest, SecondServerOnSamePortFailsCleanly) {
  MonitorServer second;
  MonitorServer::Options opts;
  opts.port = server_.port();
  EXPECT_FALSE(second.start(opts));
  EXPECT_FALSE(second.running());
}

TEST_F(MonitorServerTest, VersionServesBuildInfoJson) {
  // /version needs no attachment: it is always live so fleet tooling can
  // fingerprint a session before deciding which routes to scrape.
  const std::string response = get_path(server_.port(), "/version");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_TRUE(JsonChecker(body).valid()) << body;
  EXPECT_NE(body.find("\"git\":"), std::string::npos);
  EXPECT_NE(body.find("\"compiler\":"), std::string::npos);
  EXPECT_NE(body.find("\"obs_disabled\":"), std::string::npos);
}

TEST_F(MonitorServerTest, HistoryServesMultiResolutionJson) {
  // 404 until a history is attached.
  EXPECT_NE(get_path(server_.port(), "/history").find("404"),
            std::string::npos);

  HistoryOptions opts;
  opts.raw_capacity = 16;
  opts.bin_capacity = 8;
  opts.fold = 4;
  opts.tiers = 1;
  auto history = std::make_shared<ScoreHistory>(opts);
  for (std::uint64_t i = 0; i < 8; ++i) {
    HistorySample s;
    s.interval = i;
    s.score = -20.0 - static_cast<double>(i);
    s.spe = 0.5;
    s.alarm = i == 7;
    s.model_version = 4;
    history->append(s);
  }
  server_.set_history(history);

  const std::string raw =
      body_of(get_path(server_.port(), "/history?series=score&res=0"));
  EXPECT_TRUE(JsonChecker(raw).valid()) << raw;
  EXPECT_NE(raw.find("\"res\":0"), std::string::npos);
  EXPECT_NE(raw.find("\"interval\":7"), std::string::npos);

  const std::string folded =
      body_of(get_path(server_.port(), "/history?series=all&res=1"));
  EXPECT_TRUE(JsonChecker(folded).valid()) << folded;
  EXPECT_NE(folded.find("\"score_min\":"), std::string::npos);

  const std::string tail =
      body_of(get_path(server_.port(), "/history?series=score&res=0&from=6"));
  EXPECT_EQ(tail.find("\"interval\":5"), std::string::npos);
  EXPECT_NE(tail.find("\"interval\":6"), std::string::npos);

  // Detaching turns the route back into a 404.
  server_.set_history(nullptr);
  EXPECT_NE(get_path(server_.port(), "/history").find("404"),
            std::string::npos);
}

TEST_F(MonitorServerTest, MalformedQueryParamsAnswer400JsonNever500) {
  auto history = std::make_shared<ScoreHistory>(HistoryOptions{});
  HistorySample s;
  s.interval = 1;
  s.score = -21.0;
  history->append(s);
  server_.set_history(history);
  auto journal = std::make_shared<DecisionJournal>(8);
  DecisionRecord rec;
  rec.interval_index = 1;
  journal->append_swap(rec);
  server_.set_journal(journal);

  const char* bad[] = {
      "/history?series=bogus",  "/history?res=99",
      "/history?res=abc",       "/history?from=abc",
      "/history?from=-1",       "/journal?tail=abc",
      "/journal?tail=-1",       "/journal?tail=",
  };
  for (const char* path : bad) {
    const std::string response = get_path(server_.port(), path);
    EXPECT_NE(response.find("400"), std::string::npos) << path << "\n"
                                                       << response;
    EXPECT_EQ(response.find("500"), std::string::npos) << path;
    const std::string body = body_of(response);
    EXPECT_TRUE(JsonChecker(body).valid()) << path << "\n" << body;
    EXPECT_NE(body.find("\"error\":"), std::string::npos) << path;
  }
  server_.set_history(nullptr);
  server_.set_journal(nullptr);
}

TEST_F(MonitorServerTest, IncidentsServesListAndDetail) {
  // 404 until a store is attached.
  EXPECT_NE(get_path(server_.port(), "/incidents").find("404"),
            std::string::npos);

  const std::string dir = std::string(::testing::TempDir()) +
                          "mhm_server_incidents";
  ::mkdir(dir.c_str(), 0755);
  IncidentStore::Options store_opts;
  store_opts.dir = dir;
  auto store = std::make_shared<IncidentStore>(store_opts);
  IncidentOptions inc_opts;
  inc_opts.pre = 1;
  inc_opts.post = 1;
  inc_opts.burst_count = 1;
  inc_opts.burst_window = 4;
  IncidentRecorder recorder(inc_opts, store);
  const double row[2] = {1.0, 2.0};
  for (std::uint64_t i = 0; i < 4; ++i) {
    recorder.note(i, -30.0, 0.5, i == 1, 0, 3, -25.0, 0, row, {}, {});
  }
  ASSERT_EQ(store->total_committed(), 1u);
  server_.set_incidents(store);

  const std::string list = body_of(get_path(server_.port(), "/incidents"));
  EXPECT_TRUE(JsonChecker(list).valid()) << list;
  EXPECT_NE(list.find("\"total\":1"), std::string::npos);
  EXPECT_NE(list.find("\"reason\":\"alarm_burst\""), std::string::npos);

  const std::string one = body_of(get_path(server_.port(), "/incidents/1"));
  EXPECT_TRUE(JsonChecker(one).valid()) << one;
  EXPECT_NE(one.find("\"verdicts\":["), std::string::npos);
  EXPECT_NE(one.find("\"score_hex\":"), std::string::npos);

  // Non-numeric id is the caller's bug (400); a valid-but-unknown id is
  // simply absent (404).
  const std::string bad = get_path(server_.port(), "/incidents/abc");
  EXPECT_NE(bad.find("400"), std::string::npos);
  EXPECT_NE(body_of(bad).find("\"error\":"), std::string::npos);
  EXPECT_NE(get_path(server_.port(), "/incidents/999").find("404"),
            std::string::npos);

  server_.set_incidents(nullptr);
  EXPECT_NE(get_path(server_.port(), "/incidents").find("404"),
            std::string::npos);
}

TEST_F(MonitorServerTest, ConcurrentHistoryAndIncidentScrapes) {
  // Scrapers hammer /history and /incidents while the analysis side keeps
  // appending and committing — the TSan build must see no races.
  auto history = std::make_shared<ScoreHistory>(HistoryOptions{});
  const std::string dir = std::string(::testing::TempDir()) +
                          "mhm_server_incidents_race";
  ::mkdir(dir.c_str(), 0755);
  IncidentStore::Options store_opts;
  store_opts.dir = dir;
  auto store = std::make_shared<IncidentStore>(store_opts);
  IncidentOptions inc_opts;
  inc_opts.pre = 1;
  inc_opts.post = 1;
  inc_opts.burst_count = 1;
  inc_opts.burst_window = 2;
  inc_opts.min_gap = 8;
  IncidentRecorder recorder(inc_opts, store);
  server_.set_history(history);
  server_.set_incidents(store);

  std::vector<std::thread> scrapers;
  for (const char* path : {"/history?series=all&res=0", "/incidents",
                           "/incidents/1"}) {
    scrapers.emplace_back([this, path] {
      for (int i = 0; i < 25; ++i) (void)get_path(server_.port(), path);
    });
  }
  const double row[2] = {1.0, 2.0};
  for (std::uint64_t i = 0; i < 200; ++i) {
    HistorySample s;
    s.interval = i;
    s.score = -20.0;
    history->append(s);
    recorder.note(i, -30.0, 0.5, i % 16 == 0, 0, 3, -25.0, 0, row, {}, {});
  }
  for (auto& t : scrapers) t.join();
  EXPECT_GT(store->total_committed(), 0u);
  EXPECT_EQ(history->total_appended(), 200u);
  server_.set_history(nullptr);
  server_.set_incidents(nullptr);
}

TEST(FlightRecorderTest, DumpWritesParseableFile) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = std::string(::testing::TempDir()) + "mhm_" +
                          info->name();
  std::remove(dir.c_str());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);

  auto journal = std::make_shared<DecisionJournal>(8);
  DecisionRecord rec;
  rec.interval_index = 3;
  rec.alarm = true;
  journal->append_swap(rec);

  FlightRecorder::Options opts;
  opts.dir = dir;
  opts.handle_signals = false;  // Leave gtest's death-test handlers alone.
  ASSERT_TRUE(FlightRecorder::instance().arm(opts, journal));
  const std::vector<double> row41 = {1.0, 2.0, 3.0};
  FlightRecorder::instance().note_interval(row41, 41, false);

  const std::string path = FlightRecorder::instance().dump("unit_test");
  ASSERT_FALSE(path.empty());
  FlightRecorder::instance().disarm();
  EXPECT_FALSE(FlightRecorder::instance().armed());

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_EQ(line, "MHMDUMP 1");
  std::stringstream rest;
  rest << file.rdbuf();
  const std::string text = rest.str();
  EXPECT_NE(text.find("reason unit_test"), std::string::npos);
  EXPECT_NE(text.find("== metrics =="), std::string::npos);
  EXPECT_NE(text.find("== journal tail=1 =="), std::string::npos);
  EXPECT_NE(text.find("\"interval\":3"), std::string::npos);
  EXPECT_NE(text.find("== heatmap kind=last interval=41 cells=3 =="),
            std::string::npos);
  EXPECT_NE(text.find("== end =="), std::string::npos);
}

TEST(FlightRecorderTest, SecondArmFailsUntilDisarmed) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  FlightRecorder::Options opts;
  opts.dir = ::testing::TempDir();
  opts.handle_signals = false;
  ASSERT_TRUE(FlightRecorder::instance().arm(opts, nullptr));
  EXPECT_FALSE(FlightRecorder::instance().arm(opts, nullptr));
  FlightRecorder::instance().disarm();
  EXPECT_TRUE(FlightRecorder::instance().arm(opts, nullptr));
  FlightRecorder::instance().disarm();
}

TEST(MonitorServerDisabled, StartFailsWhenObsOff) {
  const bool was = enabled();
  set_enabled(false);
  // Runtime-disabled (or compiled out): the server refuses to start, so a
  // pipeline with MHM_OBS=0 never opens a socket.
  MonitorServer server;
  EXPECT_FALSE(server.start(MonitorServer::Options{}));
  EXPECT_FALSE(server.running());
  set_enabled(was);
}

}  // namespace
}  // namespace mhm::obs
