#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "linalg/matrix.hpp"

namespace mhm::testing {

/// Assert two matrices are elementwise close.
inline void expect_matrix_near(const linalg::Matrix& a,
                               const linalg::Matrix& b, double tol,
                               const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a(i, j), b(i, j), tol)
          << what << " at (" << i << "," << j << ")";
    }
  }
}

/// Assert two vectors are elementwise close.
inline void expect_vector_near(const std::vector<double>& a,
                               const std::vector<double>& b, double tol,
                               const char* what = "") {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << what << " at [" << i << "]";
  }
}

/// Vectors equal up to a global sign flip (eigenvector comparisons).
inline void expect_vector_near_up_to_sign(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          double tol) {
  ASSERT_EQ(a.size(), b.size());
  double dot = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  const double sign = dot >= 0.0 ? 1.0 : -1.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], sign * b[i], tol) << "at [" << i << "]";
  }
}

/// A random symmetric matrix with entries in [-1, 1].
linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed);

/// A random symmetric positive-definite matrix (A A^T + n·I scaled).
linalg::Matrix random_spd(std::size_t n, std::uint64_t seed);

}  // namespace mhm::testing
