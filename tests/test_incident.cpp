// Incident black box (src/obs/incident): trigger logic, crash-safe bundle
// commit + parse round trip, rate limiting, and the JSON surfaces.

#include "obs/incident.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

namespace mhm::obs {
namespace {

class IncidentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("mhm_incident_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    IncidentStore::Options opts;
    opts.dir = dir_.string();
    store_ = std::make_shared<IncidentStore>(opts);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static IncidentOptions small_options() {
    IncidentOptions o;
    o.pre = 2;
    o.post = 2;
    o.burst_count = 2;
    o.burst_window = 4;
    o.min_gap = 1000;
    o.top_cells = 4;
    return o;
  }

  /// One interval with a deterministic 4-cell row.
  static void feed(IncidentRecorder& rec, std::uint64_t interval, bool alarm,
                   std::uint8_t status = 0) {
    const double row[4] = {static_cast<double>(interval), 1.0, 2.0, 3.0};
    const double mean[4] = {0.0, 1.0, 2.0, 3.0};
    const double stddev[4] = {1.0, 1.0, 1.0, 1.0};
    rec.note(interval, -20.0 - static_cast<double>(interval) / 3.0,
             0.25 * static_cast<double>(interval), alarm, 2, 9, -25.5, status,
             row, mean, stddev);
  }

  std::filesystem::path dir_;
  std::shared_ptr<IncidentStore> store_;
};

TEST_F(IncidentTest, AlarmBurstCommitsParseableBundle) {
  IncidentRecorder rec(small_options(), store_);
  for (std::uint64_t i = 0; i < 5; ++i) feed(rec, i, false);
  feed(rec, 5, true);
  feed(rec, 6, true);  // Second alarm in the window: trigger.
  EXPECT_TRUE(rec.pending());
  feed(rec, 7, false);
  feed(rec, 8, false);  // Post window filled: commit.
  EXPECT_FALSE(rec.pending());
  ASSERT_EQ(rec.committed(), 1u);
  ASSERT_EQ(store_->total_committed(), 1u);

  const auto summaries = store_->summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].reason, "alarm_burst");
  EXPECT_EQ(summaries[0].trigger_interval, 6u);
  EXPECT_EQ(summaries[0].model_version, 9u);

  IncidentBundle bundle;
  std::string error;
  ASSERT_TRUE(parse_incident_file(summaries[0].path, &bundle, &error))
      << error;
  EXPECT_FALSE(bundle.truncated);
  const Incident& inc = bundle.incident;
  EXPECT_EQ(inc.reason, "alarm_burst");
  EXPECT_EQ(inc.trigger_interval, 6u);
  EXPECT_EQ(inc.model_version, 9u);
  EXPECT_EQ(inc.cells, 4u);
  // pre=2 before the trigger + trigger + post=2.
  ASSERT_EQ(inc.window.size(), 5u);
  EXPECT_EQ(inc.window.front().interval, 4u);
  EXPECT_EQ(inc.window.back().interval, 8u);
  EXPECT_FALSE(bundle.build_info.empty());
  // Hexfloat round trip: the parsed doubles are bit-identical to what the
  // recorder saw, and the captured rows came back whole.
  for (const auto& e : inc.window) {
    EXPECT_EQ(e.score, -20.0 - static_cast<double>(e.interval) / 3.0);
    EXPECT_EQ(e.spe, 0.25 * static_cast<double>(e.interval));
    ASSERT_EQ(e.row.size(), 4u);
    EXPECT_EQ(e.row[0], static_cast<double>(e.interval));
  }
  EXPECT_EQ(inc.threshold, -25.5);
  EXPECT_FALSE(inc.top_cells.empty());
}

TEST_F(IncidentTest, HealthTransitionTriggers) {
  IncidentRecorder rec(small_options(), store_);
  feed(rec, 0, false, 0);
  feed(rec, 1, false, 1);  // OK -> DRIFTING.
  feed(rec, 2, false, 1);
  feed(rec, 3, false, 1);
  ASSERT_EQ(rec.committed(), 1u);
  const auto summaries = store_->summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].reason, "health_transition");
  EXPECT_EQ(summaries[0].trigger_interval, 1u);
}

TEST_F(IncidentTest, MinGapRateLimitsRepeatTriggers) {
  IncidentRecorder rec(small_options(), store_);
  for (std::uint64_t i = 0; i < 20; ++i) feed(rec, i, true);
  // One sustained alarm wave: exactly one bundle, the rest suppressed.
  EXPECT_EQ(rec.committed(), 1u);
  EXPECT_GT(rec.suppressed(), 0u);
  EXPECT_EQ(store_->total_committed(), 1u);
}

TEST_F(IncidentTest, PartialWriteParsesAsTruncated) {
  Incident incident;
  incident.reason = "alarm_burst";
  incident.trigger_interval = 10;
  incident.model_version = 2;
  incident.cells = 4;
  incident.pre = 1;
  incident.post = 1;
  for (std::uint64_t i = 9; i <= 11; ++i) {
    IncidentEntry e;
    e.interval = i;
    e.score = -30.0;
    e.alarm = i == 10;
    e.row.assign(4, 1.0);
    incident.window.push_back(e);
  }
  const std::string path = store_->debug_commit_partial(std::move(incident));
  ASSERT_FALSE(path.empty());
  IncidentBundle bundle;
  std::string error;
  ASSERT_TRUE(parse_incident_file(path, &bundle, &error)) << error;
  EXPECT_TRUE(bundle.truncated);
  EXPECT_EQ(bundle.incident.trigger_interval, 10u);
}

TEST_F(IncidentTest, JsonSurfacesAndUnknownId) {
  IncidentRecorder rec(small_options(), store_);
  for (std::uint64_t i = 0; i < 5; ++i) feed(rec, i, false);
  feed(rec, 5, true);
  feed(rec, 6, true);
  feed(rec, 7, false);
  feed(rec, 8, false);
  ASSERT_EQ(store_->total_committed(), 1u);

  const std::string list = store_->json_list();
  EXPECT_NE(list.find("\"total\":1"), std::string::npos);
  EXPECT_NE(list.find("\"reason\":\"alarm_burst\""), std::string::npos);

  const auto one = store_->json_one(1);
  ASSERT_TRUE(one.has_value());
  EXPECT_NE(one->find("\"verdicts\":["), std::string::npos);
  EXPECT_NE(one->find("\"score_hex\":\""), std::string::npos);
  EXPECT_FALSE(store_->json_one(999).has_value());

  const std::string dump = store_->dump_section();
  EXPECT_NE(dump.find("committed 1"), std::string::npos);
  EXPECT_NE(dump.find("reason=alarm_burst"), std::string::npos);
}

TEST_F(IncidentTest, NullStoreRunsTriggerLogicWithoutWriting) {
  // The trigger machinery still runs (the window completes and counts), but
  // with no store attached nothing reaches disk.
  IncidentRecorder rec(small_options(), nullptr);
  for (std::uint64_t i = 0; i < 10; ++i) feed(rec, i, true);
  EXPECT_EQ(rec.committed(), 1u);
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

}  // namespace
}  // namespace mhm::obs
