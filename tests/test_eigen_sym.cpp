#include "linalg/eigen_sym.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "test_util.hpp"

namespace mhm::linalg {
namespace {

using mhm::testing::expect_matrix_near;
using mhm::testing::random_symmetric;
using mhm::testing::random_spd;

TEST(EigenSym, DiagonalMatrix) {
  Matrix m(3, 3, 0.0);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 3.0;
  const auto eig = eigen_symmetric(m);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(EigenSym, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
  const Matrix m = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const auto eig = eigen_symmetric(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
  const double s = 1.0 / std::sqrt(2.0);
  mhm::testing::expect_vector_near_up_to_sign(eig.eigenvectors.col_vector(0),
                                              {s, s}, 1e-12);
  mhm::testing::expect_vector_near_up_to_sign(eig.eigenvectors.col_vector(1),
                                              {s, -s}, 1e-12);
}

TEST(EigenSym, EmptyAndSingleton) {
  const auto empty = eigen_symmetric(Matrix(0, 0));
  EXPECT_TRUE(empty.eigenvalues.empty());

  Matrix one(1, 1);
  one(0, 0) = -7.5;
  const auto eig = eigen_symmetric(one);
  ASSERT_EQ(eig.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], -7.5);
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), 1.0, 1e-15);
}

TEST(EigenSym, RejectsNonSquare) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), LogicError);
}

TEST(EigenSym, RejectsAsymmetric) {
  Matrix m = Matrix::from_rows({{1.0, 2.0}, {0.0, 1.0}});
  EXPECT_THROW(eigen_symmetric(m), LogicError);
}

class EigenSymPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSymPropertyTest, ReconstructsInput) {
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, 1000 + n);
  const auto eig = eigen_symmetric(m);
  expect_matrix_near(reconstruct(eig), m, 1e-9 * static_cast<double>(n),
                     "V diag(w) V^T == A");
}

TEST_P(EigenSymPropertyTest, EigenvectorsAreOrthonormal) {
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, 2000 + n);
  const auto eig = eigen_symmetric(m);
  const Matrix vtv =
      multiply(eig.eigenvectors.transposed(), eig.eigenvectors);
  expect_matrix_near(vtv, Matrix::identity(n), 1e-10, "V^T V == I");
}

TEST_P(EigenSymPropertyTest, EigenvaluesSortedDecreasing) {
  const std::size_t n = GetParam();
  const auto eig = eigen_symmetric(random_symmetric(n, 3000 + n));
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
  }
}

TEST_P(EigenSymPropertyTest, SatisfiesEigenEquation) {
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, 4000 + n);
  const auto eig = eigen_symmetric(m);
  for (std::size_t k = 0; k < n; ++k) {
    const Vector v = eig.eigenvectors.col_vector(k);
    const Vector av = multiply(m, v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig.eigenvalues[k] * v[i], 1e-9)
          << "A v = lambda v failed for k=" << k << " i=" << i;
    }
  }
}

TEST_P(EigenSymPropertyTest, TraceEqualsEigenvalueSum) {
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, 5000 + n);
  const auto eig = eigen_symmetric(m);
  double trace = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += m(i, i);
    sum += eig.eigenvalues[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10 * static_cast<double>(n));
}

TEST_P(EigenSymPropertyTest, QlAgreesWithJacobi) {
  const std::size_t n = GetParam();
  const Matrix m = random_symmetric(n, 6000 + n);
  const auto ql = eigen_symmetric(m);
  const auto jacobi = eigen_symmetric_jacobi(m);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ql.eigenvalues[i], jacobi.eigenvalues[i], 1e-9)
        << "eigenvalue " << i;
  }
  // Eigenvectors may differ in degenerate subspaces; compare the
  // reconstructed matrices instead, which must agree regardless.
  expect_matrix_near(reconstruct(ql), reconstruct(jacobi), 1e-8,
                     "QL vs Jacobi reconstruction");
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

TEST(EigenSym, SpdMatrixHasPositiveEigenvalues) {
  const Matrix m = random_spd(12, 99);
  const auto eig = eigen_symmetric(m);
  for (double v : eig.eigenvalues) EXPECT_GT(v, 0.0);
}

TEST(EigenSym, RankDeficientMatrixHasZeroEigenvalues) {
  // Rank-1 matrix x x^T: one eigenvalue |x|^2, rest zero.
  Matrix m(4, 4, 0.0);
  const Vector x = {1.0, 2.0, 3.0, 4.0};
  syr_update(m, 1.0, x);
  const auto eig = eigen_symmetric(m);
  EXPECT_NEAR(eig.eigenvalues[0], dot(x, x), 1e-10);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(eig.eigenvalues[i], 0.0, 1e-10);
  }
}

TEST(EigenSym, HandlesRepeatedEigenvalues) {
  // 2·I has eigenvalue 2 with multiplicity n.
  const Matrix m = scaled(Matrix::identity(6), 2.0);
  const auto eig = eigen_symmetric(m);
  for (double v : eig.eigenvalues) EXPECT_NEAR(v, 2.0, 1e-12);
  expect_matrix_near(reconstruct(eig), m, 1e-10, "repeated eigenvalues");
}

TEST(EigenSym, LargeMatrixStaysAccurate) {
  const std::size_t n = 200;
  const Matrix m = random_symmetric(n, 12345);
  const auto eig = eigen_symmetric(m);
  const Matrix rec = reconstruct(eig);
  EXPECT_LT(subtract(rec, m).max_abs(), 1e-8);
}

TEST(EigenSym, MostlyColdCovarianceConverges) {
  // Regression: covariance matrices of memory heat maps have most rows
  // identically zero (cold cells). The reduced tridiagonal form then
  // carries denormal entries for which a purely relative negligibility
  // test never fires, hanging the QL iteration. Build such a matrix: a few
  // huge-scale active dimensions among many exact zeros.
  mhm::Rng rng(4242);
  const std::size_t n = 500;
  Matrix cov(n, n, 0.0);
  for (int r = 0; r < 12; ++r) {
    Vector x(n, 0.0);
    // Activity touches only every 17th dimension, with count-like scale.
    for (std::size_t i = r % 17; i < n; i += 17) x[i] = rng.uniform(0.0, 2e4);
    syr_update(cov, 1.0, x);
  }
  const auto eig = eigen_symmetric(cov);
  EXPECT_GT(eig.eigenvalues[0], 0.0);
  // Reconstruction must still hold to (scaled) accuracy.
  const Matrix rec = reconstruct(eig);
  EXPECT_LT(subtract(rec, cov).max_abs(), 1e-6 * cov.max_abs());
}

TEST(EigenSymJacobi, DiagonalAlreadyConverged) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 4.0;
  m(1, 1) = -2.0;
  const auto eig = eigen_symmetric_jacobi(m);
  EXPECT_NEAR(eig.eigenvalues[0], 4.0, 1e-14);
  EXPECT_NEAR(eig.eigenvalues[1], -2.0, 1e-14);
}

}  // namespace
}  // namespace mhm::linalg
