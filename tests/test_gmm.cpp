#include "core/gmm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"

namespace mhm {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;

/// Samples from a known 2-component 2-D mixture.
std::vector<std::vector<double>> two_cluster_data(std::size_t n,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      data.push_back({rng.normal(-5.0, 0.5), rng.normal(0.0, 0.5)});
    } else {
      data.push_back({rng.normal(5.0, 1.0), rng.normal(5.0, 1.0)});
    }
  }
  return data;
}

Gmm::Options fast_options(std::size_t j) {
  Gmm::Options opts;
  opts.components = j;
  opts.restarts = 4;
  opts.max_iterations = 150;
  return opts;
}

TEST(Gmm, RejectsDegenerateInput) {
  EXPECT_THROW(Gmm::fit({}), ConfigError);
  EXPECT_THROW(Gmm::fit({{1.0}, {2.0}}, fast_options(3)), ConfigError);
  EXPECT_THROW(Gmm::fit({{1.0}, {2.0, 3.0}}, fast_options(1)), ConfigError);
  EXPECT_THROW(Gmm::fit({{1.0}}, fast_options(0)), ConfigError);
}

TEST(Gmm, SingleGaussianRecoversMoments) {
  Rng rng(1);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 5000; ++i) {
    data.push_back({rng.normal(3.0, 2.0), rng.normal(-1.0, 0.5)});
  }
  const Gmm model = Gmm::fit(data, fast_options(1));
  ASSERT_EQ(model.component_count(), 1u);
  const auto& c = model.components()[0];
  EXPECT_NEAR(c.weight, 1.0, 1e-9);
  EXPECT_NEAR(c.mean[0], 3.0, 0.1);
  EXPECT_NEAR(c.mean[1], -1.0, 0.05);
  EXPECT_NEAR(c.covariance(0, 0), 4.0, 0.3);
  EXPECT_NEAR(c.covariance(1, 1), 0.25, 0.03);
  EXPECT_NEAR(c.covariance(0, 1), 0.0, 0.1);
}

TEST(Gmm, LogDensityMatchesClosedForm1D) {
  // Standard normal: log f(x) = -x^2/2 - ln(2π)/2.
  Rng rng(2);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 20000; ++i) data.push_back({rng.normal()});
  Gmm::Options opts = fast_options(1);
  opts.covariance_floor = 0.0;
  const Gmm model = Gmm::fit(data, opts);
  for (double x : {-2.0, -0.5, 0.0, 1.0, 2.5}) {
    const double expected = -0.5 * x * x - 0.5 * kLog2Pi;
    EXPECT_NEAR(model.log_density({x}), expected, 0.05) << "x=" << x;
  }
}

TEST(Gmm, RecoversTwoClusters) {
  const auto data = two_cluster_data(4000, 3);
  const Gmm model = Gmm::fit(data, fast_options(2));
  ASSERT_EQ(model.component_count(), 2u);
  // Identify components by mean.
  const auto& c0 = model.components()[0];
  const auto& c1 = model.components()[1];
  const auto& left = c0.mean[0] < c1.mean[0] ? c0 : c1;
  const auto& right = c0.mean[0] < c1.mean[0] ? c1 : c0;
  EXPECT_NEAR(left.mean[0], -5.0, 0.2);
  EXPECT_NEAR(left.weight, 0.3, 0.03);
  EXPECT_NEAR(right.mean[0], 5.0, 0.2);
  EXPECT_NEAR(right.mean[1], 5.0, 0.2);
  EXPECT_NEAR(right.weight, 0.7, 0.03);
}

TEST(Gmm, WeightsSumToOne) {
  const auto data = two_cluster_data(500, 4);
  for (std::size_t j : {1u, 2u, 3u, 5u}) {
    const Gmm model = Gmm::fit(data, fast_options(j));
    double sum = 0.0;
    for (const auto& c : model.components()) {
      EXPECT_GE(c.weight, 0.0);
      sum += c.weight;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "J=" << j;
  }
}

TEST(Gmm, ResponsibilitiesSumToOneAndPickRightCluster) {
  const auto data = two_cluster_data(2000, 5);
  const Gmm model = Gmm::fit(data, fast_options(2));
  const auto g_left = model.responsibilities({-5.0, 0.0});
  const auto g_right = model.responsibilities({5.0, 5.0});
  EXPECT_NEAR(g_left[0] + g_left[1], 1.0, 1e-9);
  EXPECT_NEAR(g_right[0] + g_right[1], 1.0, 1e-9);
  EXPECT_NE(model.classify({-5.0, 0.0}), model.classify({5.0, 5.0}));
  EXPECT_GT(*std::max_element(g_left.begin(), g_left.end()), 0.99);
}

TEST(Gmm, DensityIntegratesToOneMonteCarlo) {
  // ∫ f ≈ mean of f over a uniform box covering the support, times area.
  const auto data = two_cluster_data(2000, 6);
  const Gmm model = Gmm::fit(data, fast_options(2));
  Rng rng(7);
  const double x_lo = -10.0, x_hi = 10.0, y_lo = -5.0, y_hi = 10.0;
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += std::exp(model.log_density(
        {rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi)}));
  }
  const double integral =
      sum / n * (x_hi - x_lo) * (y_hi - y_lo);
  EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(Gmm, AnomaliesScoreLowerThanInliers) {
  const auto data = two_cluster_data(2000, 8);
  const Gmm model = Gmm::fit(data, fast_options(2));
  const double inlier = model.log_density({5.0, 5.0});
  const double outlier = model.log_density({0.0, -20.0});
  EXPECT_GT(inlier - outlier, 10.0);
}

TEST(Gmm, Log10DensityIsNaturalLogOverLn10) {
  const auto data = two_cluster_data(500, 9);
  const Gmm model = Gmm::fit(data, fast_options(2));
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_NEAR(model.log10_density(x), model.log_density(x) / std::log(10.0),
              1e-12);
}

TEST(Gmm, SampleRoundTrip) {
  // Samples drawn from the fit model should score like training data.
  const auto data = two_cluster_data(2000, 10);
  const Gmm model = Gmm::fit(data, fast_options(2));
  Rng rng(11);
  double sample_ll = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sample_ll += model.log_density(model.sample(rng));
  }
  const double train_ll = model.total_log_likelihood(data) /
                          static_cast<double>(data.size());
  EXPECT_NEAR(sample_ll / n, train_ll, 0.5);
}

TEST(Gmm, MoreComponentsNeverHurtTrainingLikelihood) {
  const auto data = two_cluster_data(800, 12);
  double prev = -std::numeric_limits<double>::infinity();
  for (std::size_t j : {1u, 2u, 4u}) {
    const Gmm model = Gmm::fit(data, fast_options(j));
    const double ll = model.total_log_likelihood(data);
    EXPECT_GE(ll, prev - 5.0) << "J=" << j;  // small slack: EM is local
    prev = ll;
  }
}

TEST(Gmm, DeterministicForSameSeed) {
  const auto data = two_cluster_data(300, 13);
  const Gmm a = Gmm::fit(data, fast_options(3));
  const Gmm b = Gmm::fit(data, fast_options(3));
  EXPECT_DOUBLE_EQ(a.log_density({0.0, 0.0}), b.log_density({0.0, 0.0}));
}

TEST(Gmm, ParameterCountFormula) {
  const auto data = two_cluster_data(300, 14);
  const Gmm model = Gmm::fit(data, fast_options(3));
  // d=2: per component 2 + 3 = 5; 3 components + 2 free weights = 17.
  EXPECT_EQ(model.parameter_count(), 17u);
}

TEST(Gmm, BicSelectsTrueComponentCount) {
  const auto data = two_cluster_data(3000, 15);
  std::size_t chosen = 0;
  Gmm::Options opts = fast_options(0);
  opts.restarts = 3;
  const Gmm model = Gmm::select_components(data, 1, 5, opts, &chosen);
  EXPECT_EQ(chosen, 2u);
  EXPECT_EQ(model.component_count(), 2u);
}

TEST(Gmm, SelectComponentsValidatesRange) {
  const auto data = two_cluster_data(100, 16);
  EXPECT_THROW(Gmm::select_components(data, 0, 3, fast_options(1)),
               ConfigError);
  EXPECT_THROW(Gmm::select_components(data, 4, 2, fast_options(1)),
               ConfigError);
}

TEST(Gmm, HandlesDuplicatePointsGracefully) {
  // Degenerate data (all identical): regularization must keep EM alive.
  std::vector<std::vector<double>> data(50, std::vector<double>{1.0, 2.0});
  const Gmm model = Gmm::fit(data, fast_options(2));
  EXPECT_TRUE(std::isfinite(model.log_density({1.0, 2.0})));
  EXPECT_GT(model.log_density({1.0, 2.0}), model.log_density({100.0, 2.0}));
}

TEST(Gmm, HighDimensionalFitStaysStable) {
  // 9-D data (the paper's reduced dimensionality) with 5 components.
  Rng rng(17);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 600; ++i) {
    std::vector<double> x(9);
    const int cluster = static_cast<int>(rng.uniform_int(0, 4));
    for (std::size_t d = 0; d < 9; ++d) {
      x[d] = rng.normal(static_cast<double>(cluster) * 3.0, 1.0);
    }
    data.push_back(std::move(x));
  }
  Gmm::Options opts = fast_options(5);
  const Gmm model = Gmm::fit(data, opts);
  EXPECT_EQ(model.component_count(), 5u);
  for (const auto& x : data) {
    EXPECT_TRUE(std::isfinite(model.log_density(x)));
  }
}

TEST(KmeansPlusPlus, ReturnsRequestedCenters) {
  const auto data = two_cluster_data(200, 18);
  Rng rng(19);
  const auto centers = kmeans_plus_plus_init(data, 4, rng);
  EXPECT_EQ(centers.size(), 4u);
  for (const auto& c : centers) EXPECT_EQ(c.size(), 2u);
}

TEST(KmeansPlusPlus, CentersSpreadAcrossClusters) {
  const auto data = two_cluster_data(1000, 20);
  Rng rng(21);
  const auto centers = kmeans_plus_plus_init(data, 2, rng);
  // The two centers should land in different clusters (x sign differs)
  // with overwhelming probability given the separation.
  EXPECT_LT(centers[0][0] * centers[1][0], 0.0);
}

TEST(KmeansPlusPlus, HandlesAllIdenticalPoints) {
  std::vector<std::vector<double>> data(10, std::vector<double>{1.0});
  Rng rng(22);
  const auto centers = kmeans_plus_plus_init(data, 3, rng);
  EXPECT_EQ(centers.size(), 3u);
}

}  // namespace
}  // namespace mhm
