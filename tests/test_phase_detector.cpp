#include "core/phase_detector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/rng.hpp"

namespace mhm {
namespace {

/// Synthetic phase-structured traces: cell activity depends strongly on
/// interval phase (mod 4), mimicking a hyperperiod of 4 intervals.
HeatMapTrace phased_trace(std::size_t n, std::uint64_t seed,
                          std::size_t phases = 4) {
  Rng rng(seed);
  HeatMapTrace trace;
  for (std::size_t i = 0; i < n; ++i) {
    HeatMap map(16);
    const std::size_t phase = i % phases;
    for (std::size_t c = 0; c < 16; ++c) {
      // Each phase lights up a distinct block of cells.
      const double mean = (c / 4 == phase) ? 500.0 : 50.0;
      map.increment(c, rng.poisson(mean));
    }
    map.interval_index = i;
    trace.push_back(std::move(map));
  }
  return trace;
}

PhaseAwareDetector::Options small_options(std::size_t phases = 4) {
  PhaseAwareDetector::Options opts;
  opts.phases = phases;
  opts.pca.components = 6;
  return opts;
}

TEST(PhaseAwareDetector, ValidatesInput) {
  const auto trace = phased_trace(40, 1);
  PhaseAwareDetector::Options opts = small_options();
  opts.phases = 0;
  EXPECT_THROW(PhaseAwareDetector::train(trace, trace, opts), ConfigError);
  EXPECT_THROW(PhaseAwareDetector::train({}, trace, small_options()),
               ConfigError);
  EXPECT_THROW(PhaseAwareDetector::train(trace, {}, small_options()),
               ConfigError);
}

TEST(PhaseAwareDetector, RejectsUndersampledPhases) {
  // 40 phases but only 40 maps -> 1 map per phase: not enough.
  const auto trace = phased_trace(40, 2);
  EXPECT_THROW(PhaseAwareDetector::train(trace, trace, small_options(40)),
               ConfigError);
}

TEST(PhaseAwareDetector, NormalMapsScoreAboveThreshold) {
  const auto train = phased_trace(400, 3);
  const auto valid = phased_trace(200, 4);
  const auto det = PhaseAwareDetector::train(train, valid, small_options());
  EXPECT_EQ(det.phases(), 4u);

  const auto fresh = phased_trace(200, 5);
  std::size_t alarms = 0;
  for (const auto& map : fresh) alarms += det.anomalous(map);
  EXPECT_LT(static_cast<double>(alarms) / 200.0, 0.08);
}

TEST(PhaseAwareDetector, DetectsOutOfDistributionMap) {
  const auto train = phased_trace(400, 6);
  const auto valid = phased_trace(200, 7);
  const auto det = PhaseAwareDetector::train(train, valid, small_options());

  HeatMap weird(16);
  for (std::size_t c = 0; c < 16; ++c) weird.increment(c, 500);  // all hot
  weird.interval_index = 0;
  EXPECT_TRUE(det.anomalous(weird));
}

TEST(PhaseAwareDetector, CatchesWrongPatternForPhase) {
  // The signature advantage: a *normal* pattern appearing at the *wrong*
  // phase. A pooled mixture model scores it as normal (the pattern exists);
  // the phase-conditioned detector must flag it.
  const auto train = phased_trace(400, 8);
  const auto valid = phased_trace(200, 9);
  const auto det = PhaseAwareDetector::train(train, valid, small_options());

  // Build a map that looks exactly like phase 2 but stamp it as phase 0.
  Rng rng(10);
  HeatMap impostor(16);
  for (std::size_t c = 0; c < 16; ++c) {
    const double mean = (c / 4 == 2) ? 500.0 : 50.0;
    impostor.increment(c, rng.poisson(mean));
  }
  impostor.interval_index = 0;  // phase 0
  EXPECT_TRUE(det.anomalous(impostor));

  // The same map at its true phase is normal.
  impostor.interval_index = 2;
  EXPECT_FALSE(det.anomalous(impostor));

  // And a pooled GMM with one component per pattern considers the impostor
  // normal regardless of when it occurs — the contrast this class exists
  // for.
  std::vector<std::vector<double>> reduced;
  for (const auto& m : train) reduced.push_back(det.eigenmemory().project(m));
  Gmm::Options gopts;
  gopts.components = 4;
  gopts.restarts = 4;
  const Gmm pooled = Gmm::fit(reduced, gopts);
  std::vector<double> pooled_valid_scores;
  for (const auto& m : valid) {
    pooled_valid_scores.push_back(
        pooled.log10_density(det.eigenmemory().project(m)));
  }
  const double pooled_theta = quantile(pooled_valid_scores, 0.01);
  const double impostor_score =
      pooled.log10_density(det.eigenmemory().project(impostor));
  EXPECT_GT(impostor_score, pooled_theta);  // pooled model is blind to it
}

TEST(PhaseAwareDetector, ScoreConsistencyBetweenOverloads) {
  const auto train = phased_trace(400, 11);
  const auto valid = phased_trace(200, 12);
  const auto det = PhaseAwareDetector::train(train, valid, small_options());
  const HeatMap& map = train[7];
  EXPECT_DOUBLE_EQ(det.score(map), det.score(map.as_vector(), 7 % 4));
}

TEST(PhaseAwareDetector, PhaseMeansDiffer) {
  const auto train = phased_trace(400, 13);
  const auto valid = phased_trace(200, 14);
  const auto det = PhaseAwareDetector::train(train, valid, small_options());
  // Distinct phases must have learned distinct reduced means.
  const auto& m0 = det.phase_mean(0);
  const auto& m1 = det.phase_mean(1);
  double dist = 0.0;
  for (std::size_t k = 0; k < m0.size(); ++k) {
    dist += (m0[k] - m1[k]) * (m0[k] - m1[k]);
  }
  EXPECT_GT(dist, 1.0);
  EXPECT_THROW(det.phase_mean(4), LogicError);
}

TEST(PhaseAwareDetector, DegeneratePhaseDataIsRegularized) {
  // All maps of one phase identical -> singular covariance; the escalating
  // jitter must keep the fit alive.
  HeatMapTrace train;
  Rng rng(15);
  for (std::size_t i = 0; i < 80; ++i) {
    HeatMap map(8);
    if (i % 2 == 0) {
      map.increment(0, 100);  // phase 0: constant
    } else {
      for (std::size_t c = 0; c < 8; ++c) map.increment(c, rng.poisson(40.0));
    }
    map.interval_index = i;
    train.push_back(std::move(map));
  }
  PhaseAwareDetector::Options opts;
  opts.phases = 2;
  opts.pca.components = 4;
  EXPECT_NO_THROW(PhaseAwareDetector::train(train, train, opts));
}

}  // namespace
}  // namespace mhm
