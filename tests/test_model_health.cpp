// Model-health telemetry: P² quantile sketches, CUSUM / Page–Hinkley drift
// detectors, Wilson-interval calibration tracking, and the monitor's
// end-to-end behaviour on the fast-scale pipeline (normal replay stays OK,
// an attack replay leaves OK only after its trigger).
//
// The primitives (P2Quantile, CusumDetector, PageHinkleyDetector,
// wilson_interval) are pure and stay available even when the obs layer is
// compiled out, so those tests never skip; monitor-level tests need the
// runtime obs switch and skip under MHM_OBS_DISABLE.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "common/rng.hpp"
#include "gtest/gtest.h"
#include "obs/model_health.hpp"
#include "obs/obs.hpp"
#include "pipeline/experiment.hpp"

namespace mhm::obs {
namespace {

/// Exact type-7 (sorted, linearly interpolated) quantile — the reference
/// the P² sketch is judged against.
double exact_quantile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const double h = (static_cast<double>(xs.size()) - 1.0) * p;
  const std::size_t lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  return xs[lo] + (h - static_cast<double>(lo)) * (xs[hi] - xs[lo]);
}

class EnabledGuard {
 public:
  EnabledGuard() : was_(enabled()) { set_enabled(true); }
  ~EnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

/// A monitor whose training baseline is N(-25, 2) scores; drift and
/// calibration options come from the caller.
struct MonitorFixture {
  std::vector<double> training;
  double train_mean = 0.0;
  ModelHealthMonitor monitor;

  explicit MonitorFixture(const ModelHealthOptions& opts,
                          std::size_t components = 3)
      : training(make_training()),
        train_mean(mean_of(training)),
        monitor(training, std::vector<double>(components, 1.0 / 3.0), opts) {}

  static std::vector<double> make_training() {
    Rng rng(7);
    std::vector<double> xs;
    xs.reserve(500);
    for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(-25.0, 2.0));
    return xs;
  }
  static double mean_of(const std::vector<double>& xs) {
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  }

  /// One observation with a benign row; z==0 when x is the training mean.
  void feed(double x, bool alarm, std::uint64_t interval) {
    static const std::vector<double> row(16, 1.0);
    monitor.observe(x, 0.5, interval % 3, alarm, interval, row);
  }
};

TEST(P2Quantile, MatchesExactQuantilesOnNormalData) {
  Rng rng(42);
  P2Quantile q05(0.05);
  P2Quantile q50(0.50);
  P2Quantile q95(0.95);
  std::vector<double> xs;
  xs.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.normal(-25.0, 2.0);
    xs.push_back(x);
    q05.add(x);
    q50.add(x);
    q95.add(x);
  }
  // 0.15σ tolerance: P² on 4000 iid samples is typically within a few
  // hundredths of a σ; the slack keeps the test seed-robust.
  EXPECT_NEAR(q05.value(), exact_quantile(xs, 0.05), 0.3);
  EXPECT_NEAR(q50.value(), exact_quantile(xs, 0.50), 0.3);
  EXPECT_NEAR(q95.value(), exact_quantile(xs, 0.95), 0.3);
  EXPECT_EQ(q50.count(), 4000u);
}

TEST(P2Quantile, MatchesExactQuantilesOnSkewedData) {
  Rng rng(43);
  P2Quantile q95(0.95);
  std::vector<double> xs;
  xs.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.exponential(1.0);
    xs.push_back(x);
    q95.add(x);
  }
  const double exact = exact_quantile(xs, 0.95);  // ≈ ln 20 ≈ 3.0
  EXPECT_NEAR(q95.value(), exact, 0.25 * exact);
}

TEST(P2Quantile, ExactBeforeFiveSamples) {
  P2Quantile q50(0.50);
  q50.add(3.0);
  EXPECT_DOUBLE_EQ(q50.value(), 3.0);
  q50.add(1.0);
  EXPECT_DOUBLE_EQ(q50.value(), 2.0);  // interpolated midpoint of {1,3}
  q50.add(2.0);
  EXPECT_DOUBLE_EQ(q50.value(), 2.0);  // middle of {1,2,3}
}

TEST(CusumDetector, SilentOnStationaryStream) {
  Rng rng(44);
  CusumDetector cusum(0.5, 10.0);
  for (int i = 0; i < 2000; ++i) EXPECT_FALSE(cusum.add(rng.normal()));
  EXPECT_FALSE(cusum.fired());
}

TEST(CusumDetector, FiresOnInjectedMeanShift) {
  Rng rng(45);
  CusumDetector cusum(0.5, 10.0);
  for (int i = 0; i < 500; ++i) cusum.add(rng.normal());
  EXPECT_FALSE(cusum.fired());
  // 1.5σ downward shift: s⁻ drifts up ~1.0/sample, so h=10 trips fast.
  int fired_after = -1;
  for (int i = 0; i < 100 && fired_after < 0; ++i) {
    if (cusum.add(rng.normal(-1.5, 1.0))) fired_after = i;
  }
  EXPECT_GE(fired_after, 0);
  EXPECT_LE(fired_after, 60);
  EXPECT_TRUE(cusum.fired());  // latched
  cusum.reset();
  EXPECT_FALSE(cusum.fired());
  EXPECT_DOUBLE_EQ(cusum.negative_sum(), 0.0);
}

TEST(PageHinkleyDetector, SilentOnStationaryStream) {
  Rng rng(46);
  PageHinkleyDetector ph(0.5, 20.0);
  for (int i = 0; i < 2000; ++i) EXPECT_FALSE(ph.add(rng.normal()));
  EXPECT_FALSE(ph.fired());
}

TEST(PageHinkleyDetector, FiresOnInjectedMeanShift) {
  Rng rng(47);
  PageHinkleyDetector ph(0.5, 20.0);
  for (int i = 0; i < 500; ++i) ph.add(rng.normal());
  EXPECT_FALSE(ph.fired());
  int fired_after = -1;
  for (int i = 0; i < 200 && fired_after < 0; ++i) {
    if (ph.add(rng.normal(2.0, 1.0))) fired_after = i;
  }
  EXPECT_GE(fired_after, 0);
  EXPECT_TRUE(ph.fired());
  ph.reset();
  EXPECT_FALSE(ph.fired());
  EXPECT_DOUBLE_EQ(ph.statistic(), 0.0);
}

TEST(WilsonIntervalTest, MatchesReferenceValues) {
  // 5/100 at z=1.96 — the standard worked example: [0.0215, 0.1118].
  const WilsonInterval w = wilson_interval(5, 100, 1.96);
  EXPECT_NEAR(w.low, 0.02152, 5e-4);
  EXPECT_NEAR(w.high, 0.11175, 5e-4);
  // Degenerate cases: no data is maximally uncertain, all-success has a
  // high bound of exactly 1.
  const WilsonInterval none = wilson_interval(0, 0, 3.0);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_DOUBLE_EQ(none.high, 1.0);
  const WilsonInterval all = wilson_interval(50, 50, 2.0);
  EXPECT_GT(all.low, 0.8);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
}

TEST(ModelHealthMonitorTest, CalibrationFlipsExactlyAtWilsonBoundary) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  // With zero alarms and z=2 the Wilson upper bound is z²/(n+z²) = 4/(n+4),
  // so expected_p = 0.2 leaves the interval exactly at n = 17 (4/21 < 0.2).
  ModelHealthOptions opts;
  opts.expected_p = 0.2;
  opts.wilson_z = 2.0;
  opts.min_intervals = 1;
  MonitorFixture fx(opts);
  for (std::uint64_t n = 1; n <= 16; ++n) {
    fx.feed(fx.train_mean, /*alarm=*/false, n);
    EXPECT_EQ(fx.monitor.status(), ModelHealthStatus::kOk) << "n=" << n;
  }
  fx.feed(fx.train_mean, /*alarm=*/false, 17);
  EXPECT_EQ(fx.monitor.status(), ModelHealthStatus::kMiscalibrated);
  const ModelHealthSnapshot breached = fx.monitor.snapshot();
  EXPECT_FALSE(breached.calibrated);
  ASSERT_EQ(breached.events.size(), 1u);
  EXPECT_EQ(breached.events[0].to, ModelHealthStatus::kMiscalibrated);
  EXPECT_EQ(breached.events[0].interval, 17u);

  // Miscalibration is live, not latched: alarms at the expected rate pull
  // the observed rate back inside the bound and the status recovers.
  bool recovered = false;
  for (std::uint64_t n = 18; n <= 60 && !recovered; ++n) {
    fx.feed(fx.train_mean, /*alarm=*/true, n);
    recovered = fx.monitor.status() == ModelHealthStatus::kOk;
  }
  EXPECT_TRUE(recovered);
  const ModelHealthSnapshot ok = fx.monitor.snapshot();
  EXPECT_TRUE(ok.calibrated);
  EXPECT_GE(ok.expected_p, ok.wilson.low);
  EXPECT_LE(ok.expected_p, ok.wilson.high);
}

TEST(ModelHealthMonitorTest, WarmupAndWinsorizationGuardDriftDetectors) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  ModelHealthOptions opts;
  opts.warmup = 10;
  opts.z_clamp = 8.0;
  opts.min_intervals = 1u << 30;  // keep calibration out of this test
  MonitorFixture fx(opts);
  // Cold-start outliers (intervals 0..9) never reach the drift detectors.
  for (std::uint64_t n = 0; n < 10; ++n) {
    fx.feed(fx.train_mean - 1000.0, false, n);
  }
  ModelHealthSnapshot snap = fx.monitor.snapshot();
  EXPECT_EQ(snap.status, ModelHealthStatus::kOk);
  EXPECT_DOUBLE_EQ(snap.cusum_neg, 0.0);
  EXPECT_DOUBLE_EQ(snap.ph_stat, 0.0);
  // One post-warmup freak interval is winsorized to z_clamp: the CUSUM
  // negative sum steps to z_clamp − k and stays under h = 10.
  fx.feed(fx.train_mean - 1000.0, false, 10);
  snap = fx.monitor.snapshot();
  EXPECT_EQ(snap.status, ModelHealthStatus::kOk);
  EXPECT_LE(snap.cusum_neg, opts.z_clamp);
  // A sustained 3σ shift accumulates and latches DRIFTING.
  const double sd = [&] {
    double m2 = 0.0;
    for (double x : fx.training) {
      m2 += (x - fx.train_mean) * (x - fx.train_mean);
    }
    return std::sqrt(m2 / static_cast<double>(fx.training.size() - 1));
  }();
  for (std::uint64_t n = 11; n < 30; ++n) {
    fx.feed(fx.train_mean - 3.0 * sd, false, n);
  }
  EXPECT_EQ(fx.monitor.status(), ModelHealthStatus::kDrifting);
}

TEST(ModelHealthMonitorTest, SnapshotBookkeepingAndReset) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  ModelHealthOptions opts;
  opts.history = 4;
  opts.row_stride = 1;
  MonitorFixture fx(opts);
  for (std::uint64_t n = 0; n < 7; ++n) {
    fx.feed(fx.train_mean + static_cast<double>(n), false, n);
  }
  ModelHealthSnapshot snap = fx.monitor.snapshot();
  EXPECT_EQ(snap.intervals, 7u);
  // Ring of 4, oldest first: observations 3, 4, 5, 6.
  ASSERT_EQ(snap.recent_scores.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(snap.recent_scores[i],
                     fx.train_mean + static_cast<double>(i + 3));
  }
  // Patterns cycled 0,1,2,0,1,2,0 → occupancy {3,2,2}.
  ASSERT_EQ(snap.component_occupancy.size(), 3u);
  EXPECT_EQ(snap.component_occupancy[0], 3u);
  EXPECT_EQ(snap.component_occupancy[1], 2u);
  EXPECT_EQ(snap.component_occupancy[2], 2u);
  EXPECT_EQ(snap.last_row_interval, 6u);
  EXPECT_EQ(snap.last_row.size(), 16u);

  fx.monitor.reset();
  snap = fx.monitor.snapshot();
  EXPECT_EQ(snap.intervals, 0u);
  EXPECT_EQ(snap.status, ModelHealthStatus::kOk);
  EXPECT_TRUE(snap.recent_scores.empty());
  EXPECT_EQ(snap.component_occupancy[0], 0u);
  // The training baseline survives a reset.
  EXPECT_NEAR(snap.train_mean, fx.train_mean, 1e-9);
}

TEST(ModelHealthMonitorTest, JsonCarriesTheHeadlineFields) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  MonitorFixture fx(ModelHealthOptions{});
  for (std::uint64_t n = 0; n < 20; ++n) fx.feed(fx.train_mean, false, n);
  const std::string json = model_health_json(fx.monitor.snapshot());
  for (const char* needle :
       {"\"status\":\"OK\"", "\"intervals\":20", "\"drift\":",
        "\"cusum_pos\":", "\"page_hinkley\":", "\"score\":", "\"training\":",
        "\"spe\":", "\"components\":", "\"recent_scores\":",
        "\"heat_row\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

// End-to-end acceptance: on the fast-scale pipeline a normal replay keeps
// the monitor at OK, and an attack replay drives it out of OK — only after
// the trigger interval. Fully deterministic (fixed seeds, seed-free
// monitor state).
TEST(ModelHealthMonitorTest, NormalReplayStaysOkAttackReplayDoesNot) {
  EnabledGuard guard;
  if (!enabled()) GTEST_SKIP() << "obs layer compiled out";
  const sim::SystemConfig cfg = pipeline::fast_test_config(1);
  pipeline::TrainedPipeline pipe = pipeline::train_pipeline(
      cfg, pipeline::fast_test_plan(), pipeline::fast_test_detector_options());
  const auto health = pipe.detector->model_health();
  ASSERT_NE(health, nullptr);
  health->reset();

  const SimTime duration = 2 * kSecond;
  const pipeline::ScenarioRun normal = pipeline::run_scenario(
      cfg, nullptr, 0, duration, pipe.detector.get(), 4242);
  ASSERT_FALSE(normal.verdicts.empty());
  for (const Verdict& v : normal.verdicts) {
    EXPECT_TRUE(std::isfinite(v.spe));
    EXPECT_GE(v.spe, 0.0);
  }
  ModelHealthSnapshot snap = health->snapshot();
  EXPECT_EQ(snap.status, ModelHealthStatus::kOk)
      << model_health_json(snap);
  EXPECT_EQ(snap.intervals, normal.verdicts.size());

  health->reset();
  auto attack = attacks::make_scenario("app_addition");
  const SimTime trigger = 1 * kSecond;
  const pipeline::ScenarioRun attacked = pipeline::run_scenario(
      cfg, attack.get(), trigger, duration, pipe.detector.get(), 4242);
  snap = health->snapshot();
  EXPECT_NE(snap.status, ModelHealthStatus::kOk) << model_health_json(snap);
  ASSERT_FALSE(snap.events.empty());
  // No false transition before the attack fired.
  EXPECT_GE(snap.events.front().interval, attacked.trigger_interval);
}

}  // namespace
}  // namespace mhm::obs
