#include "sim/kernel_image.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace mhm::sim {
namespace {

TEST(KernelImage, DefaultLayoutMatchesPaperRegion) {
  const KernelImage image;
  EXPECT_EQ(image.base(), 0xC0008000u);
  EXPECT_EQ(image.text_size(), 3'013'284u);
  EXPECT_EQ(image.text_end(), 0xC0008000u + 3'013'284u);
}

TEST(KernelImage, SubsystemsPartitionTextExactly) {
  const KernelImage image;
  const auto& subs = image.subsystems();
  ASSERT_FALSE(subs.empty());
  EXPECT_EQ(subs.front().begin, image.base());
  EXPECT_EQ(subs.back().end, image.text_end());
  for (std::size_t i = 1; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].begin, subs[i - 1].end) << "gap before " << subs[i].name;
  }
}

TEST(KernelImage, FunctionsAreContiguousWithinSubsystems) {
  const KernelImage image;
  for (const auto& sub : image.subsystems()) {
    ASSERT_GT(sub.function_count, 0u) << sub.name;
    Address cursor = sub.begin;
    for (std::size_t f = sub.first_function;
         f < sub.first_function + sub.function_count; ++f) {
      const auto& fn = image.function(f);
      EXPECT_EQ(fn.address, cursor) << fn.name;
      EXPECT_GE(fn.size_bytes, 16u);
      EXPECT_EQ(fn.subsystem, &sub - image.subsystems().data());
      cursor = fn.end();
    }
    EXPECT_EQ(cursor, sub.end) << sub.name;
  }
}

TEST(KernelImage, ExpectedSubsystemsExist) {
  const KernelImage image;
  for (const char* name :
       {"entry", "sched", "irq", "time", "syscall", "signal", "fork_exec",
        "mm", "fs", "ipc", "module", "security", "drivers", "net", "crypto",
        "lib"}) {
    EXPECT_NO_THROW(image.subsystem(name)) << name;
  }
  EXPECT_THROW(image.subsystem("nonexistent"), ConfigError);
}

TEST(KernelImage, DeterministicForSameSeed) {
  const KernelImage a;
  const KernelImage b;
  ASSERT_EQ(a.functions().size(), b.functions().size());
  for (std::size_t i = 0; i < a.functions().size(); ++i) {
    EXPECT_EQ(a.functions()[i].address, b.functions()[i].address);
    EXPECT_EQ(a.functions()[i].size_bytes, b.functions()[i].size_bytes);
  }
}

TEST(KernelImage, DifferentSeedsGiveDifferentLayouts) {
  KernelImage::Params p;
  p.seed = 1;
  const KernelImage a(p);
  p.seed = 2;
  const KernelImage b(p);
  bool any_diff = a.functions().size() != b.functions().size();
  if (!any_diff) {
    for (std::size_t i = 0; i < a.functions().size(); ++i) {
      any_diff |= a.functions()[i].size_bytes != b.functions()[i].size_bytes;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(KernelImage, FunctionCountIsRealistic) {
  // ~3 MB of text at ~480 B mean function size -> thousands of functions,
  // like a real embedded kernel.
  const KernelImage image;
  EXPECT_GT(image.functions().size(), 2000u);
  EXPECT_LT(image.functions().size(), 20000u);
}

TEST(KernelImage, FunctionAtFindsContainingFunction) {
  const KernelImage image;
  for (std::size_t i : {std::size_t{0}, image.functions().size() / 2,
                        image.functions().size() - 1}) {
    const auto& fn = image.function(i);
    EXPECT_EQ(image.function_at(fn.address), &fn);
    EXPECT_EQ(image.function_at(fn.address + fn.size_bytes / 2), &fn);
    EXPECT_EQ(image.function_at(fn.end() - 1), &fn);
  }
}

TEST(KernelImage, FunctionAtRejectsOutsideText) {
  const KernelImage image;
  EXPECT_EQ(image.function_at(image.base() - 1), nullptr);
  EXPECT_EQ(image.function_at(image.text_end()), nullptr);
  EXPECT_EQ(image.function_at(0), nullptr);
}

TEST(KernelImage, PickFunctionsStaysInsideSubsystem) {
  const KernelImage image;
  const auto& mm = image.subsystem("mm");
  const auto picks = image.pick_functions("mm", 10, 42);
  EXPECT_EQ(picks.size(), 10u);
  for (std::size_t f : picks) {
    EXPECT_GE(f, mm.first_function);
    EXPECT_LT(f, mm.first_function + mm.function_count);
  }
}

TEST(KernelImage, PickFunctionsIsDeterministic) {
  const KernelImage image;
  EXPECT_EQ(image.pick_functions("fs", 5, 7), image.pick_functions("fs", 5, 7));
}

TEST(KernelImage, DifferentSaltsPickDifferentSets) {
  const KernelImage image;
  const auto a = image.pick_functions("fs", 8, 1);
  const auto b = image.pick_functions("fs", 8, 2);
  EXPECT_NE(a, b);
}

TEST(KernelImage, PickFunctionsClampsToSubsystemSize) {
  const KernelImage image;
  const auto& entry = image.subsystem("entry");
  const auto picks = image.pick_functions("entry", entry.function_count + 50, 3);
  EXPECT_EQ(picks.size(), entry.function_count);
}

TEST(KernelImage, RejectsZeroTextSize) {
  KernelImage::Params p;
  p.text_size = 0;
  EXPECT_THROW(KernelImage{p}, ConfigError);
}

TEST(KernelImage, SubsystemFractionsSumToOne) {
  const KernelImage image;
  double total = 0.0;
  for (const auto& sub : image.subsystems()) total += sub.text_fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace mhm::sim
