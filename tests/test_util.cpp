#include "test_util.hpp"

#include "common/rng.hpp"

namespace mhm::testing {

linalg::Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::Matrix spd = multiply(a, a.transposed());
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += 0.5 * static_cast<double>(n);
  }
  return spd;
}

}  // namespace mhm::testing
