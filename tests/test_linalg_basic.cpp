#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "test_util.hpp"

namespace mhm::linalg {
namespace {

using mhm::testing::expect_matrix_near;
using mhm::testing::expect_vector_near;

TEST(VectorOps, DotProduct) {
  const Vector a = {1.0, 2.0, 3.0};
  const Vector b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(VectorOps, DotRejectsSizeMismatch) {
  const Vector a = {1.0};
  const Vector b = {1.0, 2.0};
  EXPECT_THROW(dot(a, b), mhm::LogicError);
}

TEST(VectorOps, Norm2) {
  const Vector a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(VectorOps, Axpy) {
  const Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  axpy(2.0, x, y);
  expect_vector_near(y, {12.0, 24.0}, 1e-15);
}

TEST(VectorOps, Scale) {
  Vector x = {1.0, -2.0};
  scale(x, -3.0);
  expect_vector_near(x, {-3.0, 6.0}, 1e-15);
}

TEST(VectorOps, AddSubtract) {
  const Vector a = {5.0, 7.0};
  const Vector b = {1.0, 2.0};
  expect_vector_near(add(a, b), {6.0, 9.0}, 1e-15);
  expect_vector_near(subtract(a, b), {4.0, 5.0}, 1e-15);
}

TEST(VectorOps, SquaredDistance) {
  EXPECT_DOUBLE_EQ(squared_distance(Vector{0.0, 0.0}, Vector{3.0, 4.0}), 25.0);
}

TEST(VectorOps, NormalizeReturnsOriginalNorm) {
  Vector v = {0.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(normalize(v), 5.0);
  EXPECT_NEAR(norm2(v), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroVectorIsNoop) {
  Vector v = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(v), 0.0);
  expect_vector_near(v, {0.0, 0.0}, 0.0);
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), mhm::LogicError);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  expect_matrix_near(t.transposed(), m, 0.0, "double transpose");
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  const Matrix c = multiply(a, b);
  expect_matrix_near(c, Matrix::from_rows({{19.0, 22.0}, {43.0, 50.0}}),
                     1e-14, "2x2 product");
}

TEST(Matrix, MultiplyIdentityIsNoop) {
  const Matrix m = mhm::testing::random_symmetric(8, 5);
  expect_matrix_near(multiply(m, Matrix::identity(8)), m, 1e-14, "M*I");
  expect_matrix_near(multiply(Matrix::identity(8), m), m, 1e-14, "I*M");
}

TEST(Matrix, MultiplyRejectsShapeMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(multiply(a, b), mhm::LogicError);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  expect_vector_near(multiply(a, Vector{1.0, 1.0}), {3.0, 7.0}, 1e-14);
}

TEST(Matrix, TransposeVectorProductMatchesExplicitTranspose) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Vector x = {2.0, -1.0};
  expect_vector_near(multiply_transpose(a, x),
                     multiply(a.transposed(), x), 1e-14);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{1.0, 1.0}, {1.0, 1.0}});
  expect_matrix_near(add(a, b), Matrix::from_rows({{2.0, 3.0}, {4.0, 5.0}}),
                     1e-15, "add");
  expect_matrix_near(subtract(a, b),
                     Matrix::from_rows({{0.0, 1.0}, {2.0, 3.0}}), 1e-15,
                     "subtract");
  expect_matrix_near(scaled(a, 2.0),
                     Matrix::from_rows({{2.0, 4.0}, {6.0, 8.0}}), 1e-15,
                     "scale");
}

TEST(Matrix, SyrUpdateBuildsOuterProduct) {
  Matrix m(3, 3, 0.0);
  const Vector x = {1.0, 2.0, 3.0};
  syr_update(m, 2.0, x);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), 2.0 * x[i] * x[j]);
    }
  }
}

TEST(Matrix, ColVector) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  expect_vector_near(m.col_vector(1), {2.0, 4.0}, 0.0);
  EXPECT_THROW(m.col_vector(2), mhm::LogicError);
}

TEST(Matrix, FrobeniusNormAndMaxAbs) {
  const Matrix m = Matrix::from_rows({{3.0, 0.0}, {0.0, -4.0}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, MaxAsymmetry) {
  Matrix m = Matrix::from_rows({{1.0, 2.0}, {2.5, 1.0}});
  EXPECT_DOUBLE_EQ(max_asymmetry(m), 0.5);
  EXPECT_DOUBLE_EQ(max_asymmetry(Matrix::identity(4)), 0.0);
}

}  // namespace
}  // namespace mhm::linalg
