// Fleet layer: spec parsing, the sharded runner's determinism contract,
// aggregation rollups + top-K ranking, the /fleet route, and the
// O(shards) metric-cardinality guarantee. Everything runs at fast test
// scale against one shared trained pipeline.

#include "fleet/runner.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "engine/engine.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/spec.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/model_health.hpp"
#include "obs/server.hpp"
#include "pipeline/experiment.hpp"

namespace mhm::fleet {
namespace {

// --- spec parsing -----------------------------------------------------

TEST(FleetSpec, ParsesFullFile) {
  const FleetSpec spec = FleetSpec::parse_string(
      "# a fleet\n"
      "devices = 500\n"
      "shards = 9\n"
      "intervals = 40\n"
      "seed = 11\n"
      "top_k = 3\n"
      "health_refresh = 5\n"
      "journal_capacity = 16\n"
      "health_history = 2\n"
      "health_row_stride = 0\n"
      "health_max_events = 1\n"
      "session_bytes_budget = 32768\n"
      "[archetype.steady]\n"
      "weight = 0.75\n"
      "jitter = 1.5\n"
      "[archetype.rootkit]\n"
      "weight = 0.25\n"
      "attack = rootkit\n"
      "trigger = 12\n");
  EXPECT_EQ(spec.devices, 500u);
  EXPECT_EQ(spec.shards, 9u);
  EXPECT_EQ(spec.resolved_shards(), 9u);
  EXPECT_EQ(spec.intervals, 40u);
  EXPECT_EQ(spec.seed, 11u);
  EXPECT_EQ(spec.top_k, 3u);
  EXPECT_EQ(spec.health_refresh, 5u);
  EXPECT_EQ(spec.journal_capacity, 16u);
  EXPECT_EQ(spec.health_history, 2u);
  EXPECT_EQ(spec.health_row_stride, 0u);
  EXPECT_EQ(spec.health_max_events, 1u);
  EXPECT_EQ(spec.session_bytes_budget, 32768u);
  ASSERT_EQ(spec.archetypes.size(), 2u);
  EXPECT_EQ(spec.archetypes[0].name, "steady");
  EXPECT_DOUBLE_EQ(spec.archetypes[0].weight, 0.75);
  EXPECT_DOUBLE_EQ(spec.archetypes[0].jitter_scale, 1.5);
  EXPECT_TRUE(spec.archetypes[0].attack.empty());
  EXPECT_EQ(spec.archetypes[1].name, "rootkit");
  EXPECT_EQ(spec.archetypes[1].attack, "rootkit");
  EXPECT_EQ(spec.archetypes[1].trigger_interval, 12u);
}

TEST(FleetSpec, DefaultsAndShardResolution) {
  const FleetSpec spec = FleetSpec::parse_string("devices = 100\n");
  ASSERT_EQ(spec.archetypes.size(), 1u);  // Implicit all-normal fleet.
  EXPECT_EQ(spec.archetypes[0].name, "steady");
  EXPECT_EQ(spec.resolved_shards(), 1u);

  FleetSpec by_size;
  by_size.devices = 1000;
  EXPECT_EQ(by_size.resolved_shards(), 4u);  // ceil(1000/256)
  by_size.devices = 100000;
  EXPECT_EQ(by_size.resolved_shards(), 64u);  // Clamped.
  by_size.shards = 7;
  EXPECT_EQ(by_size.resolved_shards(), 7u);  // Explicit wins.
}

TEST(FleetSpec, RejectsMalformedInput) {
  EXPECT_THROW(FleetSpec::parse_string("frobnicate = 1\n"), ConfigError);
  EXPECT_THROW(FleetSpec::parse_string("[frobnicate]\n"), ConfigError);
  EXPECT_THROW(FleetSpec::parse_string("[archetype.bad name]\n"),
               ConfigError);
  EXPECT_THROW(FleetSpec::parse_string("devices\n"), ConfigError);
  EXPECT_THROW(FleetSpec::parse_string("devices = many\n"), ConfigError);
  EXPECT_THROW(FleetSpec::parse_string("devices = 0\n"), ConfigError);
  EXPECT_THROW(FleetSpec::parse_string("[archetype.a]\nweight = -1\n"),
               ConfigError);
  EXPECT_THROW(FleetSpec::parse_string("[archetype.a]\nweight = 0\n"),
               ConfigError);
  EXPECT_THROW(FleetSpec::load("/nonexistent/fleet.ini"), ConfigError);
}

// --- shared fixture ---------------------------------------------------

FleetSpec small_spec() {
  FleetSpec spec;
  spec.devices = 96;
  spec.intervals = 16;
  spec.seed = 7;
  spec.top_k = 5;
  spec.health_refresh = 4;
  ArchetypeSpec steady;
  steady.name = "steady";
  steady.weight = 0.8;
  spec.archetypes.push_back(steady);
  ArchetypeSpec attacked;
  attacked.name = "shellcode";
  attacked.weight = 0.2;
  attacked.attack = "shellcode";
  attacked.trigger_interval = 6;
  spec.archetypes.push_back(attacked);
  return spec;
}

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipe_ = new pipeline::TrainedPipeline(pipeline::train_pipeline(
        pipeline::fast_test_config(), pipeline::fast_test_plan(),
        pipeline::fast_test_detector_options()));
  }
  static void TearDownTestSuite() {
    delete pipe_;
    pipe_ = nullptr;
  }

  static FleetRunner make_runner(const FleetSpec& spec) {
    return FleetRunner(spec, pipeline::fast_test_config(),
                       pipe_->detector->snapshot());
  }

  static pipeline::TrainedPipeline* pipe_;
};

pipeline::TrainedPipeline* FleetTest::pipe_ = nullptr;

void expect_same_snapshot(const FleetSnapshot& a, const FleetSnapshot& b) {
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_EQ(a.devices_ok, b.devices_ok);
  EXPECT_EQ(a.devices_drifting, b.devices_drifting);
  EXPECT_EQ(a.devices_miscalibrated, b.devices_miscalibrated);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (std::size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].device, b.top[i].device);
    EXPECT_EQ(a.top[i].archetype, b.top[i].archetype);
    EXPECT_EQ(a.top[i].severity, b.top[i].severity);  // Bit-identical.
    EXPECT_EQ(a.top[i].alarms, b.top[i].alarms);
    EXPECT_EQ(a.top[i].status, b.top[i].status);
  }
  ASSERT_EQ(a.shard_summaries.size(), b.shard_summaries.size());
  for (std::size_t s = 0; s < a.shard_summaries.size(); ++s) {
    EXPECT_EQ(a.shard_summaries[s].devices, b.shard_summaries[s].devices);
    EXPECT_EQ(a.shard_summaries[s].intervals,
              b.shard_summaries[s].intervals);
    EXPECT_EQ(a.shard_summaries[s].alarms, b.shard_summaries[s].alarms);
    // intervals_per_sec is wall clock: explicitly outside the contract.
  }
  ASSERT_EQ(a.incident_groups.size(), b.incident_groups.size());
  for (std::size_t g = 0; g < a.incident_groups.size(); ++g) {
    EXPECT_EQ(a.incident_groups[g].first_interval,
              b.incident_groups[g].first_interval);
    EXPECT_EQ(a.incident_groups[g].last_interval,
              b.incident_groups[g].last_interval);
    EXPECT_EQ(a.incident_groups[g].devices, b.incident_groups[g].devices);
    EXPECT_EQ(a.incident_groups[g].marks, b.incident_groups[g].marks);
    EXPECT_EQ(a.incident_groups[g].archetypes,
              b.incident_groups[g].archetypes);
  }
}

// Same spec + seed must produce bit-identical aggregate state at any
// thread count: shard layout comes from the spec, rounds are barriers,
// and every per-device update is owner-only.
TEST_F(FleetTest, DeterministicAcrossThreadCounts) {
  const std::size_t before = configured_threads();
  set_global_threads(1);
  FleetRunner serial = make_runner(small_spec());
  serial.run_all();
  const FleetSnapshot serial_snap = serial.aggregator().snapshot();

  set_global_threads(3);
  FleetRunner threaded = make_runner(small_spec());
  threaded.run_all();
  const FleetSnapshot threaded_snap = threaded.aggregator().snapshot();
  set_global_threads(before);

  EXPECT_GT(serial_snap.intervals, 0u);
  expect_same_snapshot(serial_snap, threaded_snap);
}

TEST_F(FleetTest, TopKRanksAttackedStreamsFirst) {
  FleetRunner runner = make_runner(small_spec());
  runner.run_all();
  EXPECT_TRUE(runner.done());
  const FleetSnapshot snap = runner.aggregator().snapshot();

  EXPECT_EQ(snap.devices, 96u);
  EXPECT_EQ(snap.intervals, 96u * 16u);
  EXPECT_GT(snap.alarms, 0u);  // The shellcode slice must fire.
  EXPECT_EQ(snap.devices_ok + snap.devices_drifting +
                snap.devices_miscalibrated,
            snap.devices);

  ASSERT_LE(snap.top.size(), small_spec().top_k);
  ASSERT_FALSE(snap.top.empty());
  for (std::size_t i = 1; i < snap.top.size(); ++i) {
    const TopStream& prev = snap.top[i - 1];
    const TopStream& cur = snap.top[i];
    EXPECT_TRUE(prev.severity > cur.severity ||
                (prev.severity == cur.severity && prev.device < cur.device))
        << "top-K not ordered at " << i;
  }
  EXPECT_EQ(snap.top.front().archetype, "shellcode");
  EXPECT_GT(snap.top.front().severity, 0.0);
  EXPECT_GT(snap.top.front().alarms, 0u);
}

TEST_F(FleetTest, RunRoundsIsResumable) {
  FleetRunner runner = make_runner(small_spec());
  EXPECT_EQ(runner.run_rounds(3), 3u * 96u);
  EXPECT_FALSE(runner.done());
  EXPECT_EQ(runner.rounds_completed(), 3u);
  EXPECT_EQ(runner.run_all(), 13u * 96u);
  EXPECT_TRUE(runner.done());
  EXPECT_EQ(runner.run_rounds(4), 0u);  // Interval budget exhausted.
}

// --- JSON + /fleet route ----------------------------------------------

/// Tiny structural check: balanced braces/brackets outside strings. The
/// full recursive validation lives in test_obs_server.cpp; here we guard
/// the fleet document's shape and content.
bool roughly_valid_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string && !s.empty() && s.front() == '{' &&
         s.back() == '}';
}

TEST_F(FleetTest, JsonCarriesRollupAndTop) {
  FleetRunner runner = make_runner(small_spec());
  runner.run_all();
  const std::string json = runner.json();
  EXPECT_TRUE(roughly_valid_json(json)) << json;
  EXPECT_NE(json.find("\"devices\":96"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rollup\":{\"ok\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards_detail\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"top\":[{\"device\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"archetype\":\"shellcode\""), std::string::npos)
      << json;
}

TEST_F(FleetTest, IncidentGroupsChainCoTemporalAlarmWaves) {
  FleetRunner runner = make_runner(small_spec());
  runner.run_all();
  const FleetSnapshot snap = runner.aggregator().snapshot();

  // The shellcode slice (~19 devices) triggers at the same interval, so its
  // marks must chain into co-temporal groups rather than 19 singletons.
  ASSERT_FALSE(snap.incident_groups.empty());
  std::size_t devices = 0;
  std::uint64_t marks = 0;
  for (const IncidentGroup& g : snap.incident_groups) {
    EXPECT_LE(g.first_interval, g.last_interval);
    EXPECT_GE(g.devices, 1u);
    EXPECT_GE(g.marks, g.devices);
    ASSERT_FALSE(g.archetypes.empty());
    devices += g.devices;
    marks += g.marks;
  }
  EXPECT_GT(devices, 1u);
  EXPECT_GE(marks, devices);
  bool saw_shellcode = false;
  for (const IncidentGroup& g : snap.incident_groups) {
    for (const std::string& name : g.archetypes) {
      if (name == "shellcode") saw_shellcode = true;
    }
  }
  EXPECT_TRUE(saw_shellcode);

  // And the JSON surface carries the groups for /fleet scrapers.
  const std::string json = runner.json();
  EXPECT_NE(json.find("\"incident_groups\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"marks\":"), std::string::npos) << json;
}

std::string get_path(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(FleetTest, ServerServesFleetRoute) {
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  FleetRunner runner = make_runner(small_spec());
  runner.run_all();

  obs::MonitorServer server;
  ASSERT_TRUE(server.start({}));
  // Before a provider is attached the route 404s instead of serving junk.
  EXPECT_NE(get_path(server.port(), "/fleet").find("404"),
            std::string::npos);

  server.set_fleet([&runner] { return runner.json(); });
  const std::string response = get_path(server.port(), "/fleet");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  std::string body = response.substr(split + 4);
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.pop_back();
  }
  EXPECT_TRUE(roughly_valid_json(body)) << body;
  EXPECT_NE(body.find("\"rollup\""), std::string::npos);
  server.stop();
}

TEST_F(FleetTest, FlightRecorderDumpCarriesFleetSection) {
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  FleetRunner runner = make_runner(small_spec());
  runner.run_all();

  const auto dir =
      std::filesystem::temp_directory_path() / "mhm_fleet_dump_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  obs::FlightRecorder::Options opts;
  opts.dir = dir.string();
  ASSERT_TRUE(obs::FlightRecorder::instance().arm(opts, nullptr));
  obs::FlightRecorder::instance().set_fleet(
      [&runner] { return runner.json(); });
  const std::string path = obs::FlightRecorder::instance().dump("test");
  obs::FlightRecorder::instance().disarm();
  ASSERT_FALSE(path.empty());

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("== fleet =="), std::string::npos);
  EXPECT_NE(text.find("\"rollup\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

// --- cardinality + concurrency ----------------------------------------

// The whole point of the aggregator: a 1k-device fleet may only add
// fleet/shard-level series to the registry, never per-device ones.
TEST_F(FleetTest, RegistryCardinalityStaysShardLevel) {
  // Warm-register every fixed shared-name series (fleet gauges, session /
  // journal / model-health gauges) with a tiny single-shard run, so the
  // delta below counts only shard-indexed growth. Without this the test
  // would be sensitive to whether earlier tests ran in the same process.
  {
    FleetSpec warm = small_spec();
    warm.devices = 8;
    warm.intervals = 2;
    warm.health_refresh = 1;
    FleetRunner warmup = make_runner(warm);
    warmup.run_all();
  }
  FleetSpec spec = small_spec();
  spec.devices = 1000;
  spec.intervals = 4;
  spec.health_refresh = 2;
  const std::size_t before = obs::Registry::instance().snapshot().size();
  FleetRunner runner = make_runner(spec);
  runner.run_all();  // Folds refresh the fleet-level gauges too.
  const std::size_t after = obs::Registry::instance().snapshot().size();
  const std::size_t delta = after - before;
  // Only shard-indexed series (3 per shard: intervals_scored,
  // intervals_per_sec, cycles_per_interval; shard 0's were registered by
  // the warm-up) may appear for the 1000 new devices — never O(devices).
  EXPECT_LE(delta, 3 * runner.shard_count());
  EXPECT_LT(delta, spec.devices / 10);
}

// Scrapes (snapshot/json) must be safe while the runner is mid-round —
// this is the exact interleaving the obs serve thread produces, and the
// TSan CI job runs this test to prove it.
TEST_F(FleetTest, ConcurrentScrapesDuringRun) {
  FleetSpec spec = small_spec();
  spec.intervals = 24;
  FleetRunner runner = make_runner(spec);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string json = runner.json();
      EXPECT_TRUE(roughly_valid_json(json));
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  runner.run_all();
  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_EQ(runner.aggregator().snapshot().intervals, 96u * 24u);
}

// --- per-session memory knobs -----------------------------------------

TEST(FleetSessionBudget, FleetPresetShrinksObservationState) {
  const auto opts = engine::SessionOptions::fleet_preset();
  EXPECT_EQ(opts.journal_capacity, 32u);
  EXPECT_EQ(opts.top_cells, 0u);
  EXPECT_EQ(opts.health_history, 0u);
  EXPECT_EQ(opts.health_row_stride, 0u);
  EXPECT_EQ(opts.health_max_events, 4u);
}

TEST(FleetSessionBudget, HealthKnobsComeFromEnv) {
  ::setenv("MHM_DRIFT_HISTORY", "7", 1);
  ::setenv("MHM_DRIFT_ROW_STRIDE", "0", 1);
  ::setenv("MHM_DRIFT_MAX_EVENTS", "2", 1);
  const obs::ModelHealthOptions opts = obs::ModelHealthOptions::from_env();
  EXPECT_EQ(opts.history, 7u);
  EXPECT_EQ(opts.row_stride, 0u);
  EXPECT_EQ(opts.max_events, 2u);
  ::unsetenv("MHM_DRIFT_HISTORY");
  ::unsetenv("MHM_DRIFT_ROW_STRIDE");
  ::unsetenv("MHM_DRIFT_MAX_EVENTS");
}

TEST_F(FleetTest, FleetPresetSessionKeepsNoHistoryOrRows) {
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  engine::DetectionEngine engine(pipe_->detector->snapshot());
  engine::Session session =
      engine.new_session(engine::SessionOptions::fleet_preset());
  std::vector<double> row;
  for (std::size_t i = 0; i < pipe_->validation.size(); ++i) {
    pipe_->validation[i].as_vector_into(row);
    session.analyze(row, i);
  }
  const auto health = session.model_health();
  if (health == nullptr) GTEST_SKIP() << "obs layer compiled out";
  const obs::ModelHealthSnapshot snap = health->snapshot();
  EXPECT_GT(snap.intervals, 0u);
  EXPECT_TRUE(snap.recent_scores.empty());  // history = 0
  EXPECT_TRUE(snap.last_row.empty());       // row_stride = 0: no raw copy
  EXPECT_LE(snap.events.size(), 4u);        // max_events = 4
}

// --- ephemeral env server ---------------------------------------------

TEST(FleetEnvServer, ObsPortZeroBindsEphemeralPort) {
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  if (obs::MonitorServer::instance().running()) {
    GTEST_SKIP() << "process-wide server already started by another test";
  }
  ::setenv("MHM_OBS_PORT", "0", 1);
  EXPECT_TRUE(obs::MonitorServer::ensure_env_server());
  EXPECT_TRUE(obs::MonitorServer::instance().running());
  EXPECT_NE(obs::MonitorServer::instance().port(), 0);
  const std::string response =
      get_path(obs::MonitorServer::instance().port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  obs::MonitorServer::instance().stop();
  ::unsetenv("MHM_OBS_PORT");
}

}  // namespace
}  // namespace mhm::fleet
