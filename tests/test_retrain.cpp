// Continuous-training tests: the NormalWindow clean-interval reservoir, the
// RetrainManager policy state machine (drift-sustain → train → validate →
// publish), hot-swap pickup by live sessions, determinism of the retrain
// artifact across thread counts, and the background worker under concurrent
// scoring load (the TSan target — zero dropped intervals, monotone
// model_version).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/model_io.hpp"
#include "engine/engine.hpp"
#include "engine/normal_window.hpp"
#include "engine/retrain.hpp"
#include "obs/model_health.hpp"

namespace mhm {
namespace {

using engine::NormalWindow;
using engine::RetrainManager;
using engine::RetrainReport;
using engine::RetrainState;
using obs::ModelHealthStatus;

constexpr std::size_t kCells = 16;

/// Stationary "normal behaviour" rows — same generator family as
/// test_engine's synthetic_maps, as raw vectors.
std::vector<std::vector<double>> normal_rows(std::size_t n,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<double> row(kCells);
    for (std::size_t c = 0; c < kCells; ++c) {
      row[c] = static_cast<double>(
          rng.poisson(40.0 + 12.0 * static_cast<double>(c % 4)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

AnomalyDetector::Options tiny_options() {
  AnomalyDetector::Options opts;
  opts.pca.components = 4;
  opts.gmm.components = 2;
  opts.gmm.restarts = 2;
  return opts;
}

/// One tiny trained engine shared per fixture instantiation.
engine::DetectionEngine tiny_engine() {
  const auto train = normal_rows(160, 101);
  const auto valid = normal_rows(80, 102);
  const AnomalyDetector det =
      AnomalyDetector::train(train, valid, tiny_options());
  return engine::DetectionEngine(det.snapshot());
}

RetrainManager::Options inline_options() {
  RetrainManager::Options o;
  o.background = false;
  o.sustain = 8;
  o.cooldown = 16;
  o.min_window = 64;
  o.gmm_restarts = 2;
  return o;
}

std::string test_dir(const char* stem) {
  const std::string name = ::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name();
  return (std::filesystem::temp_directory_path() /
          (std::string(stem) + "_" + name))
      .string();
}

std::string report_str(const RetrainReport& r) {
  return "reason=" + r.reason + " rows=" + std::to_string(r.window_rows) +
         " holdout_rate=" + std::to_string(r.holdout_alarm_rate) +
         " wilson=[" + std::to_string(r.wilson_low) + "," +
         std::to_string(r.wilson_high) + "] p=" +
         std::to_string(r.expected_p) +
         " qshift=" + std::to_string(r.quantile_shift);
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- NormalWindow ---

// Satellite regression: alarmed or non-OK intervals must never enter the
// clean reservoir, whatever order they arrive in.
TEST(NormalWindowTest, RejectsAlarmedAndNonOkIntervals) {
  NormalWindow window(8);
  const std::vector<double> row(kCells, 1.0);

  EXPECT_TRUE(window.offer(row, 0, false, ModelHealthStatus::kOk));
  EXPECT_FALSE(window.offer(row, 1, true, ModelHealthStatus::kOk));
  EXPECT_FALSE(window.offer(row, 2, false, ModelHealthStatus::kDrifting));
  EXPECT_FALSE(window.offer(row, 3, false, ModelHealthStatus::kMiscalibrated));
  EXPECT_FALSE(window.offer(row, 4, true, ModelHealthStatus::kDrifting));
  EXPECT_TRUE(window.offer(row, 5, false, ModelHealthStatus::kOk));

  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.accepted(), 2u);
  EXPECT_EQ(window.rejected(), 4u);
  EXPECT_EQ(window.last_intervals(),
            (std::vector<std::uint64_t>{0, 5}));
}

TEST(NormalWindowTest, RingKeepsNewestRowsOldestFirst) {
  NormalWindow window(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::vector<double> row(kCells, static_cast<double>(i));
    EXPECT_TRUE(window.offer(row, i, false, ModelHealthStatus::kOk));
  }
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.accepted(), 10u);
  EXPECT_EQ(window.last_intervals(), (std::vector<std::uint64_t>{6, 7, 8, 9}));
  const auto rows = window.last();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front()[0], 6.0);
  EXPECT_EQ(rows.back()[0], 9.0);
  // last(n) trims from the old end.
  EXPECT_EQ(window.last_intervals(2), (std::vector<std::uint64_t>{8, 9}));

  window.clear();
  EXPECT_EQ(window.size(), 0u);
  EXPECT_TRUE(window.last().empty());
  EXPECT_EQ(window.accepted(), 10u);  // Monotonic counters survive clear().
}

TEST(NormalWindowTest, RejectsZeroCapacity) {
  EXPECT_THROW(NormalWindow(0), ConfigError);
}

// --- Session ↔ window wiring ---

TEST(SessionCleanWindowTest, AlarmedIntervalsNeverEnterTheWindow) {
  const engine::DetectionEngine engine = tiny_engine();
  engine::SessionOptions so;
  so.clean_window_capacity = 64;
  engine::Session session = engine.new_session(so);
  ASSERT_NE(session.clean_window(), nullptr);

  const auto clean = normal_rows(40, 7);
  std::uint64_t next = 0;
  for (const auto& row : clean) session.analyze(row, next++);

  // Rows scaled far outside the training distribution must alarm — and
  // must therefore be refused by the reservoir.
  std::vector<std::uint64_t> alarmed;
  for (const auto& row : normal_rows(10, 8)) {
    std::vector<double> hot(row);
    for (double& v : hot) v *= 25.0;
    const Verdict v = session.analyze(hot, next);
    ASSERT_TRUE(v.anomalous) << "interval " << next;
    alarmed.push_back(next);
    ++next;
  }

  const auto held = session.clean_window()->last_intervals();
  for (const std::uint64_t a : alarmed) {
    for (const std::uint64_t h : held) {
      EXPECT_NE(h, a) << "alarmed interval leaked into the clean window";
    }
  }
  // The accessor mirrors the window contents.
  EXPECT_EQ(session.last_clean().size(), held.size());
  EXPECT_EQ(session.last_clean(3).size(), std::min<std::size_t>(3, held.size()));
}

TEST(SessionCleanWindowTest, NoWindowUnlessConfigured) {
  const engine::DetectionEngine engine = tiny_engine();
  engine::Session session = engine.new_session();
  EXPECT_EQ(session.clean_window(), nullptr);
  EXPECT_TRUE(session.last_clean().empty());
}

// --- RetrainManager ---

TEST(RetrainManagerTest, RetrainNowPublishesAndSessionPicksUpSwap) {
  engine::DetectionEngine engine = tiny_engine();
  const std::uint64_t v0 = engine.model_version();

  auto window = std::make_shared<NormalWindow>(128);
  std::uint64_t i = 0;
  for (const auto& row : normal_rows(128, 21)) {
    window->offer(row, i++, false, ModelHealthStatus::kOk);
  }

  const std::string dir = test_dir("mhm_retrain_reg");
  std::filesystem::remove_all(dir);
  auto registry = std::make_shared<ModelRegistry>(dir);

  engine::Session session = engine.new_session();
  const auto probe = normal_rows(4, 22);
  EXPECT_EQ(session.analyze(probe[0], 1000).model_version, v0);

  RetrainManager manager(engine, window, registry, inline_options());
  const RetrainReport report = manager.retrain_now(128);
  EXPECT_TRUE(report.accepted) << report_str(report);
  EXPECT_EQ(report.reason, "published");
  EXPECT_EQ(report.version, 1u);
  EXPECT_EQ(report.window_rows, 128u);
  EXPECT_EQ(report.train_rows + report.calibration_rows + report.holdout_rows,
            128u);
  EXPECT_EQ(manager.published(), 1u);
  EXPECT_EQ(manager.last_report().reason, "published");

  // The artifact is on disk and the engine now serves it; the live session
  // picks it up at its next interval boundary without dropping a map.
  EXPECT_EQ(registry->latest_version().value(), 1u);
  EXPECT_EQ(engine.model_version(), 1u);
  const Verdict after = session.analyze(probe[1], 1001);
  EXPECT_EQ(after.model_version, 1u);
  ASSERT_EQ(session.transitions().size(), 1u);
  EXPECT_EQ(session.transitions()[0].from_version, v0);
  EXPECT_EQ(session.transitions()[0].to_version, 1u);

  // Publishing clears the reservoir: the next candidate trains on post-swap
  // behaviour only.
  EXPECT_EQ(window->size(), 0u);

  std::filesystem::remove_all(dir);
}

TEST(RetrainManagerTest, SmallWindowRejectsAndLeavesModelUntouched) {
  engine::DetectionEngine engine = tiny_engine();
  const std::uint64_t v0 = engine.model_version();

  auto window = std::make_shared<NormalWindow>(128);
  std::uint64_t i = 0;
  for (const auto& row : normal_rows(16, 31)) {
    window->offer(row, i++, false, ModelHealthStatus::kOk);
  }

  RetrainManager manager(engine, window, nullptr, inline_options());
  const RetrainReport report = manager.retrain_now(16);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.reason, "window_too_small");
  EXPECT_EQ(manager.published(), 0u);
  EXPECT_EQ(manager.rejected_count(), 1u);
  EXPECT_EQ(manager.state(), RetrainState::kOk);
  EXPECT_EQ(engine.model_version(), v0);
  // A rejected run must not clear the window — those rows are still good.
  EXPECT_EQ(window->size(), 16u);
}

TEST(RetrainManagerTest, RejectsBadConfig) {
  engine::DetectionEngine engine = tiny_engine();
  auto window = std::make_shared<NormalWindow>(8);
  EXPECT_THROW(RetrainManager(engine, nullptr, nullptr, inline_options()),
               ConfigError);
  RetrainManager::Options bad = inline_options();
  bad.calibration_fraction = 0.5;
  bad.holdout_fraction = 0.5;
  EXPECT_THROW(RetrainManager(engine, window, nullptr, bad), ConfigError);
}

TEST(RetrainManagerTest, SustainedDriftTriggersInlineRetrain) {
  engine::DetectionEngine engine = tiny_engine();
  auto window = std::make_shared<NormalWindow>(128);
  std::uint64_t i = 0;
  for (const auto& row : normal_rows(96, 41)) {
    window->offer(row, i++, false, ModelHealthStatus::kOk);
  }

  RetrainManager::Options opts = inline_options();  // sustain 8, cooldown 16
  RetrainManager manager(engine, window, nullptr, opts);
  EXPECT_EQ(manager.state(), RetrainState::kOk);

  // A drift blip shorter than the sustain threshold resets on the next OK.
  for (std::uint64_t n = 0; n < opts.sustain - 1; ++n) {
    manager.note(100 + n, ModelHealthStatus::kDrifting);
  }
  EXPECT_EQ(manager.state(), RetrainState::kDrifting);
  manager.note(107, ModelHealthStatus::kOk);
  EXPECT_EQ(manager.state(), RetrainState::kOk);
  EXPECT_EQ(manager.published(), 0u);

  // Sustained drift fires exactly one (inline) attempt → publish → cooldown.
  for (std::uint64_t n = 0; n < opts.sustain; ++n) {
    manager.note(200 + n, ModelHealthStatus::kDrifting);
  }
  EXPECT_EQ(manager.published(), 1u);
  EXPECT_EQ(manager.state(), RetrainState::kCooldown);

  // Cooldown swallows further drift for `cooldown` intervals, then re-arms.
  for (std::uint64_t n = 0; n < opts.cooldown; ++n) {
    manager.note(300 + n, ModelHealthStatus::kDrifting);
    EXPECT_EQ(manager.published(), 1u);
  }
  EXPECT_EQ(manager.state(), RetrainState::kOk);
  const std::string json = manager.json();
  EXPECT_NE(json.find("\"state\":\"OK\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"published\":1"), std::string::npos) << json;
}

TEST(RetrainManagerTest, PublishHookSeesTheReport) {
  engine::DetectionEngine engine = tiny_engine();
  auto window = std::make_shared<NormalWindow>(128);
  std::uint64_t i = 0;
  for (const auto& row : normal_rows(128, 51)) {
    window->offer(row, i++, false, ModelHealthStatus::kOk);
  }
  RetrainManager manager(engine, window, nullptr, inline_options());
  std::vector<RetrainReport> seen;
  manager.set_publish_hook(
      [&](const RetrainReport& r) { seen.push_back(r); });
  const RetrainReport report = manager.retrain_now(128);
  ASSERT_TRUE(report.accepted) << report_str(report);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].version, report.version);
  EXPECT_EQ(seen[0].trigger_interval, 128u);
}

// The retrain artifact must be bit-identical at any MHM_THREADS — the
// whole numeric path (top-k PCA, EM, calibration) rides the deterministic
// parallel_for runtime.
TEST(RetrainManagerTest, PublishedArtifactIsBitIdenticalAcrossThreadCounts) {
  const auto fill = normal_rows(128, 61);
  std::string bytes[2];
  const std::size_t threads[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    set_global_threads(threads[t]);
    engine::DetectionEngine engine = tiny_engine();
    auto window = std::make_shared<NormalWindow>(128);
    std::uint64_t i = 0;
    for (const auto& row : fill) {
      window->offer(row, i++, false, ModelHealthStatus::kOk);
    }
    const std::string dir =
        test_dir("mhm_retrain_det") + "_t" + std::to_string(threads[t]);
    std::filesystem::remove_all(dir);
    auto registry = std::make_shared<ModelRegistry>(dir);
    RetrainManager manager(engine, window, registry, inline_options());
    const RetrainReport report = manager.retrain_now(0);
    ASSERT_TRUE(report.accepted) << report_str(report);
    bytes[t] = file_bytes(registry->path_for(report.version));
    std::filesystem::remove_all(dir);
  }
  set_global_threads(0);  // Back to the environment default.
  ASSERT_FALSE(bytes[0].empty());
  EXPECT_EQ(bytes[0], bytes[1])
      << "retrain artifact differs between MHM_THREADS=1 and 4";
}

// --- Background worker under live scoring load (the TSan target) ---

TEST(RetrainManagerTest, BackgroundRetrainUnderLoadDropsNothing) {
  engine::DetectionEngine engine = tiny_engine();
  engine::SessionOptions so;
  so.clean_window_capacity = 128;
  // No per-session health monitor: its latching drift detectors would
  // starve the reservoir on this synthetic stream, and the drift signal
  // here is injected through the status hook anyway — this test is about
  // the background worker racing a live scoring loop.
  so.attach_health = false;
  engine::Session session = engine.new_session(so);

  RetrainManager::Options opts;
  opts.background = true;
  opts.sustain = 16;
  opts.cooldown = 64;
  opts.min_window = 64;
  opts.gmm_restarts = 2;
  RetrainManager manager(engine, session.clean_window(), nullptr, opts);
  std::atomic<std::uint64_t> publishes{0};
  manager.set_publish_hook(
      [&](const RetrainReport&) { publishes.fetch_add(1); });

  // The scoring thread (this one) wires its per-interval status into the
  // manager exactly as the serve loop does. A synthetic drift burst starting
  // at interval 300 arms the background worker while scoring continues.
  session.set_status_hook([&](std::uint64_t interval, ModelHealthStatus) {
    const bool drift_burst = interval >= 300 && interval < 420;
    manager.note(interval,
                 drift_burst ? ModelHealthStatus::kDrifting
                             : ModelHealthStatus::kOk);
  });

  const auto rows = normal_rows(700, 71);
  std::vector<Verdict> verdicts;
  verdicts.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    verdicts.push_back(session.analyze(rows[i], i));
  }
  manager.drain();
  // The last attempt may finish after the stream ended; a short tail of
  // intervals picks any post-stream publish up at the next boundary.
  for (const auto& row : normal_rows(4, 72)) {
    verdicts.push_back(session.analyze(row, verdicts.size()));
  }

  // Zero dropped intervals: one verdict per offered map, indices intact.
  ASSERT_EQ(verdicts.size(), rows.size() + 4);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].interval_index, i);
  }
  // Hot swaps never move a session backwards.
  for (std::size_t i = 1; i < verdicts.size(); ++i) {
    EXPECT_GE(verdicts[i].model_version, verdicts[i - 1].model_version);
  }
  EXPECT_EQ(manager.published(), publishes.load());
  ASSERT_GE(manager.published(), 1u)
      << "drift burst never produced a publish; last attempt: "
      << report_str(manager.last_report()) << "; window accepted="
      << session.clean_window()->accepted()
      << " rejected=" << session.clean_window()->rejected()
      << " size=" << session.clean_window()->size();
  // With a null registry each publish bumps the version by one from 0.
  EXPECT_EQ(engine.model_version(), manager.published());
  EXPECT_EQ(verdicts.back().model_version, engine.model_version());
  ASSERT_GE(session.transitions().size(), 1u);
}

}  // namespace
}  // namespace mhm
