#include "core/explainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mhm {
namespace {

/// Training data with structure: cells 0..7 active around distinct means,
/// cells 8..19 identically cold (zero variance) — the MHM covariance shape.
std::vector<std::vector<double>> structured_training(std::size_t n,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> x(20, 0.0);
    const double activity = rng.uniform(0.5, 1.5);
    for (std::size_t c = 0; c < 8; ++c) {
      x[c] = activity * 100.0 * static_cast<double>(c + 1) +
             rng.normal(0.0, 5.0);
    }
    out.push_back(std::move(x));
  }
  return out;
}

class SpeDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    training_ = structured_training(300, 1);
    validation_ = structured_training(150, 2);
    Eigenmemory::Options opts;
    opts.components = 2;
    basis_ = Eigenmemory::fit(training_, opts);
  }
  std::vector<std::vector<double>> training_;
  std::vector<std::vector<double>> validation_;
  Eigenmemory basis_;
};

TEST_F(SpeDetectorTest, ValidatesArguments) {
  EXPECT_THROW(SpeDetector(basis_, {}, 0.01), ConfigError);
  EXPECT_THROW(SpeDetector(basis_, validation_, 0.0), ConfigError);
  EXPECT_THROW(SpeDetector(basis_, validation_, 1.0), ConfigError);
}

TEST_F(SpeDetectorTest, NormalMapsHaveSmallSpe) {
  const SpeDetector det(basis_, validation_, 0.01);
  std::size_t alarms = 0;
  const auto fresh = structured_training(400, 3);
  for (const auto& x : fresh) alarms += det.anomalous(x);
  // Calibrated for ~1 % FP; allow slack for distribution shift.
  EXPECT_LT(static_cast<double>(alarms) / 400.0, 0.06);
}

TEST_F(SpeDetectorTest, CatchesOrthogonalDeviation) {
  // A burst into cold cells (8..12) lies orthogonal to the retained basis:
  // the projected weights barely move, but the residual explodes. This is
  // the blind spot SPE exists to close (EXPERIMENTS.md E7 note).
  const SpeDetector det(basis_, validation_, 0.01);
  std::vector<double> map = structured_training(1, 4)[0];
  for (std::size_t c = 8; c <= 12; ++c) map[c] += 500.0;
  EXPECT_TRUE(det.anomalous(map));
  EXPECT_GT(det.spe(map), 10.0 * det.threshold());
}

TEST_F(SpeDetectorTest, ProjectedWeightsBarelySeeOrthogonalDeviation) {
  // Companion assertion: the reduced representation itself changes little,
  // demonstrating why the GMM path alone misses this class of anomaly.
  std::vector<double> normal_map = structured_training(1, 5)[0];
  std::vector<double> attacked = normal_map;
  for (std::size_t c = 8; c <= 12; ++c) attacked[c] += 500.0;
  const auto w_normal = basis_.project(normal_map);
  const auto w_attacked = basis_.project(attacked);
  double weight_shift = 0.0;
  for (std::size_t k = 0; k < w_normal.size(); ++k) {
    weight_shift += std::abs(w_attacked[k] - w_normal[k]);
  }
  const SpeDetector det(basis_, validation_, 0.01);
  const double spe_shift = det.spe(attacked) - det.spe(normal_map);
  // The residual grows by ~5*500^2 = 1.25e6; the weights move by O(100).
  EXPECT_GT(spe_shift, 1e5);
  EXPECT_LT(weight_shift, 1e3);
}

TEST_F(SpeDetectorTest, SpeIsZeroInFullRankBasis) {
  Eigenmemory::Options opts;
  opts.components = 8;  // matches the true rank of the active subspace + 1
  opts.allow_gram_trick = false;
  const Eigenmemory full = Eigenmemory::fit(training_, opts);
  const SpeDetector det(full, validation_, 0.01);
  // With (almost) all variance directions retained, training-like maps
  // reconstruct almost exactly.
  EXPECT_LT(det.spe(training_[0]), det.spe(training_[0]) + 1.0);
  Eigenmemory::Options tiny;
  tiny.components = 1;
  const Eigenmemory small = Eigenmemory::fit(training_, tiny);
  const SpeDetector det_small(small, validation_, 0.01);
  EXPECT_GT(det_small.spe(training_[0]), det.spe(training_[0]));
}

TEST(AnomalyExplainer, ValidatesInput) {
  EXPECT_THROW(AnomalyExplainer({}), ConfigError);
  EXPECT_THROW(AnomalyExplainer({{1.0}, {1.0, 2.0}}), ConfigError);
}

TEST(AnomalyExplainer, LearnsPerCellStatistics) {
  const auto training = structured_training(500, 6);
  const AnomalyExplainer explainer(training);
  EXPECT_EQ(explainer.cell_count(), 20u);
  // Active cell 3 has mean ~ activity-mean * 400.
  EXPECT_NEAR(explainer.mean()[3], 400.0, 30.0);
  EXPECT_GT(explainer.stddev()[3], 10.0);
  // Cold cells have zero mean and zero std.
  EXPECT_DOUBLE_EQ(explainer.mean()[15], 0.0);
  EXPECT_DOUBLE_EQ(explainer.stddev()[15], 0.0);
}

TEST(AnomalyExplainer, RanksInjectedDeviationFirst) {
  const auto training = structured_training(300, 7);
  const AnomalyExplainer explainer(training);
  std::vector<double> map = structured_training(1, 8)[0];
  map[14] += 5000.0;  // cold cell suddenly hot
  const auto top = explainer.explain(map, 5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].cell, 14u);
  EXPECT_GT(top[0].z_score, 10.0);
  EXPECT_DOUBLE_EQ(top[0].expected, 0.0);
  EXPECT_NEAR(top[0].observed, 5000.0, 1.0);
}

TEST(AnomalyExplainer, ZScoresAreSigned) {
  const auto training = structured_training(300, 9);
  const AnomalyExplainer explainer(training);
  std::vector<double> map = structured_training(1, 10)[0];
  map[7] = 0.0;  // activity that *disappeared* (e.g. killed task)
  const auto top = explainer.explain(map, 3);
  bool found_negative = false;
  for (const auto& d : top) {
    if (d.cell == 7) {
      EXPECT_LT(d.z_score, -3.0);
      found_negative = true;
    }
  }
  EXPECT_TRUE(found_negative);
}

TEST(AnomalyExplainer, KLargerThanCellsClamps) {
  const auto training = structured_training(50, 11);
  const AnomalyExplainer explainer(training);
  const auto all = explainer.explain(training[0], 100);
  EXPECT_EQ(all.size(), 20u);
}

TEST(AnomalyExplainer, FromTraceMatchesRawConstruction) {
  HeatMapTrace maps;
  Rng rng(12);
  for (int i = 0; i < 40; ++i) {
    HeatMap m(6);
    for (std::size_t c = 0; c < 6; ++c) m.increment(c, rng.poisson(20.0 * static_cast<double>(c + 1)));
    maps.push_back(m);
  }
  const AnomalyExplainer a = AnomalyExplainer::from_trace(maps);
  std::vector<std::vector<double>> raw;
  for (const auto& m : maps) raw.push_back(m.as_vector());
  const AnomalyExplainer b(raw);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
}

}  // namespace
}  // namespace mhm
