#include "pipeline/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pipeline/secure_core.hpp"

namespace mhm::pipeline {
namespace {

TEST(ProfilingPlan, CollectNormalTraceConcatenatesRuns) {
  sim::SystemConfig cfg = fast_test_config();
  ProfilingPlan plan;
  plan.runs = 3;
  plan.run_duration = 200 * kMillisecond;
  const auto trace = collect_normal_trace(cfg, plan);
  EXPECT_EQ(trace.size(), 60u);  // 3 runs x 20 intervals
}

TEST(ProfilingPlan, WarmupIntervalsAreSkipped) {
  sim::SystemConfig cfg = fast_test_config();
  ProfilingPlan plan;
  plan.runs = 2;
  plan.run_duration = 200 * kMillisecond;
  plan.warmup_intervals = 5;
  const auto trace = collect_normal_trace(cfg, plan);
  EXPECT_EQ(trace.size(), 30u);  // 2 x (20 - 5)
  // The first surviving map of each run has interval_index == 5.
  EXPECT_EQ(trace[0].interval_index, 5u);
  EXPECT_EQ(trace[15].interval_index, 5u);
}

TEST(ProfilingPlan, DifferentRunsUseDifferentSeeds) {
  sim::SystemConfig cfg = fast_test_config();
  ProfilingPlan plan;
  plan.runs = 2;
  plan.run_duration = 100 * kMillisecond;
  const auto trace = collect_normal_trace(cfg, plan);
  ASSERT_EQ(trace.size(), 20u);
  // Same interval index from the two runs must differ (different seeds).
  EXPECT_NE(trace[0].counts(), trace[10].counts());
}

class TrainedPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SystemConfig cfg = fast_test_config();
    pipeline_ = new TrainedPipeline(train_pipeline(
        cfg, fast_test_plan(), fast_test_detector_options()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static TrainedPipeline* pipeline_;
};

TrainedPipeline* TrainedPipelineTest::pipeline_ = nullptr;

TEST_F(TrainedPipelineTest, ThresholdsAreOrdered) {
  EXPECT_LE(pipeline_->theta_05.log10_value, pipeline_->theta_1.log10_value);
  EXPECT_DOUBLE_EQ(pipeline_->theta_05.p, 0.005);
  EXPECT_DOUBLE_EQ(pipeline_->theta_1.p, 0.01);
}

TEST_F(TrainedPipelineTest, TrainingAndValidationAreDisjointRuns) {
  EXPECT_FALSE(pipeline_->training.empty());
  EXPECT_FALSE(pipeline_->validation.empty());
  EXPECT_LT(pipeline_->validation.size(), pipeline_->training.size());
}

TEST_F(TrainedPipelineTest, NormalRunHasLowFalsePositiveRate) {
  ScenarioRun run = run_scenario(fast_test_config(), nullptr, 0,
                                 2 * kSecond, pipeline_->detector.get(),
                                 /*seed=*/4242);
  EXPECT_EQ(run.scenario, "normal");
  const std::vector<double> dens = run.log10_densities();
  ASSERT_EQ(dens.size(), 200u);
  std::size_t alarms = 0;
  for (double d : dens) {
    alarms += (d < pipeline_->theta_1.log10_value);
  }
  // Expected FP rate ~1 %; allow generous slack for distribution shift.
  EXPECT_LT(static_cast<double>(alarms) / 200.0, 0.08);
}

TEST_F(TrainedPipelineTest, ScenarioRunBookkeeping) {
  attacks::AppAdditionAttack attack;
  ScenarioRun run =
      run_scenario(fast_test_config(), &attack, 1 * kSecond, 2 * kSecond,
                   pipeline_->detector.get(), /*seed=*/99);
  EXPECT_EQ(run.scenario, "app_addition");
  EXPECT_EQ(run.trigger_interval, 100u);
  EXPECT_EQ(run.maps.size(), 200u);
  EXPECT_EQ(run.verdicts.size(), 200u);
  EXPECT_EQ(run.traffic_volumes.size(), 200u);
  EXPECT_EQ(run.intervals_before_trigger(), 100u);
  EXPECT_EQ(run.intervals_after_trigger(), 100u);
}

TEST_F(TrainedPipelineTest, AttackIsDetectedAfterTrigger) {
  attacks::AppAdditionAttack attack;
  ScenarioRun run =
      run_scenario(fast_test_config(), &attack, 1 * kSecond, 2 * kSecond,
                   pipeline_->detector.get(), /*seed=*/77);
  const double theta = pipeline_->theta_1.log10_value;
  const auto latency = run.detection_latency(theta);
  ASSERT_TRUE(latency.has_value());
  // At the coarse 8 KB test granularity the very first flagged interval can
  // lag the launch by a few periods of the injected task.
  EXPECT_LE(*latency, 10u);
  // Densities drop persistently (Figure 7 shape). At the coarse test
  // granularity some intervals where qsort does not execute still look
  // normal (§5.3-1 observes the same), so require a robust minority plus a
  // clear mean shift rather than a majority.
  EXPECT_GT(run.detections_after_trigger(theta), 20u);
  double before = 0.0;
  double after = 0.0;
  const std::vector<double> dens = run.log10_densities();
  for (std::size_t i = 0; i < run.maps.size(); ++i) {
    (run.maps[i].interval_index < run.trigger_interval ? before : after) +=
        dens[i];
  }
  before /= static_cast<double>(run.intervals_before_trigger());
  after /= static_cast<double>(run.intervals_after_trigger());
  EXPECT_LT(after, before - 2.0);
}

TEST_F(TrainedPipelineTest, FalsePositiveHelpersUseTrigger) {
  attacks::AppAdditionAttack attack;
  ScenarioRun run =
      run_scenario(fast_test_config(), &attack, 1 * kSecond, 2 * kSecond,
                   pipeline_->detector.get(), /*seed=*/55);
  const double very_low_threshold = -1e9;
  EXPECT_EQ(run.false_positives_before_trigger(very_low_threshold), 0u);
  EXPECT_EQ(run.detections_after_trigger(very_low_threshold), 0u);
  EXPECT_FALSE(run.detection_latency(very_low_threshold).has_value());
}

TEST_F(TrainedPipelineTest, RunWithoutDetectorCollectsMapsOnly) {
  ScenarioRun run = run_scenario(fast_test_config(), nullptr, 0,
                                 500 * kMillisecond, nullptr, 1);
  EXPECT_EQ(run.maps.size(), 50u);
  EXPECT_TRUE(run.verdicts.empty());
  EXPECT_TRUE(run.log10_densities().empty());
  EXPECT_EQ(run.traffic_volumes.size(), 50u);
}

TEST_F(TrainedPipelineTest, SecureCoreMonitorRaisesAlarmsOnAttack) {
  sim::SystemConfig cfg = fast_test_config();
  cfg.seed = 31337;
  sim::System system(cfg);
  SecureCoreMonitor monitor(system, pipeline_->det());

  std::vector<SecureCoreMonitor::Alarm> seen;
  monitor.set_alarm_handler(
      [&](const SecureCoreMonitor::Alarm& a) { seen.push_back(a); });

  attacks::ShellcodeAttack attack("bitcount");
  attack.arm(system, 1 * kSecond);
  system.run_for(2 * kSecond);

  EXPECT_EQ(monitor.verdicts().size(), 200u);
  EXPECT_FALSE(monitor.alarms().empty());
  EXPECT_EQ(seen.size(), monitor.alarms().size());
  // The overwhelming majority of alarms must be post-trigger.
  std::size_t post = 0;
  for (const auto& a : monitor.alarms()) post += (a.interval_index >= 100);
  EXPECT_GT(static_cast<double>(post) /
                static_cast<double>(monitor.alarms().size()),
            0.8);
}

TEST_F(TrainedPipelineTest, SecureCoreAnalysisFitsWithinInterval) {
  sim::SystemConfig cfg = fast_test_config();
  sim::System system(cfg);
  SecureCoreMonitor monitor(system, pipeline_->det());
  system.run_for(1 * kSecond);
  // The whole point of §5.4: analysis (~hundreds of µs) << interval (10 ms).
  // Judge the mean plus a small overrun allowance: a parallel test runner
  // can preempt an individual analysis for multiple milliseconds.
  EXPECT_LT(monitor.deadline_overruns(), 3u);
  EXPECT_LT(monitor.mean_analysis_time_ns(), 1e7);  // < 10 ms
}

TEST(FastTestHelpers, AreConsistent) {
  const sim::SystemConfig cfg = fast_test_config();
  EXPECT_NO_THROW(cfg.monitor.validate());
  EXPECT_EQ(cfg.monitor.cell_count(), 368u);
  const ProfilingPlan plan = fast_test_plan();
  EXPECT_GT(plan.runs, 0u);
  const auto opts = fast_test_detector_options();
  EXPECT_GT(opts.pca.components, 0u);
}

}  // namespace
}  // namespace mhm::pipeline
