#include "hw/control_registers.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/memometer.hpp"

namespace mhm::hw {
namespace {

TEST(MemometerRegisters, StartsDisabledAndUnarmed) {
  MemometerRegisters regs;
  EXPECT_FALSE(regs.enabled());
  EXPECT_EQ(regs.read(MemometerRegisters::kStatus), 0u);
  EXPECT_THROW(regs.to_config(), ConfigError);
}

TEST(MemometerRegisters, ProgramRoundTripsPaperConfig) {
  MemometerRegisters regs;
  const MhmConfig paper = MhmConfig::paper_default();
  regs.program(paper);
  EXPECT_TRUE(regs.enabled());
  EXPECT_EQ(regs.read(MemometerRegisters::kStatus), 1u);

  const MhmConfig out = regs.to_config();
  EXPECT_EQ(out.base, paper.base);
  EXPECT_EQ(out.size, paper.size);
  EXPECT_EQ(out.granularity, paper.granularity);
  EXPECT_EQ(out.interval, paper.interval);
  EXPECT_EQ(out.cell_count(), 1472u);
}

TEST(MemometerRegisters, RawRegisterWritesMatchProgram) {
  // Drive the bank the way a bare-metal secure-core driver would.
  MemometerRegisters regs;
  regs.write(MemometerRegisters::kBaseLo, 0xC0008000u);
  regs.write(MemometerRegisters::kBaseHi, 0);
  regs.write(MemometerRegisters::kSizeLo, 3'013'284u);
  regs.write(MemometerRegisters::kSizeHi, 0);
  regs.write(MemometerRegisters::kGranShift, 11);  // 2 KB
  regs.write(MemometerRegisters::kIntervalUs, 10'000);
  regs.write(MemometerRegisters::kCtrl, MemometerRegisters::kCtrlEnable);

  const MhmConfig cfg = regs.to_config();
  EXPECT_EQ(cfg.base, 0xC0008000u);
  EXPECT_EQ(cfg.granularity, 2048u);
  EXPECT_EQ(cfg.interval, 10 * kMillisecond);
}

TEST(MemometerRegisters, SupportsAddressesAbove4G) {
  MemometerRegisters regs;
  MhmConfig cfg = MhmConfig::paper_default();
  cfg.base = 0x1'2345'6000ull;
  regs.program(cfg);
  EXPECT_EQ(regs.to_config().base, 0x1'2345'6000ull);
}

TEST(MemometerRegisters, StatusIsReadOnly) {
  MemometerRegisters regs;
  EXPECT_THROW(regs.write(MemometerRegisters::kStatus, 1), ConfigError);
}

TEST(MemometerRegisters, RejectsOutOfRangeAccess) {
  MemometerRegisters regs;
  EXPECT_THROW(regs.write(MemometerRegisters::kRegisterCount, 0), ConfigError);
  EXPECT_THROW(regs.read(MemometerRegisters::kRegisterCount), ConfigError);
}

TEST(MemometerRegisters, RejectsHugeShift) {
  MemometerRegisters regs;
  EXPECT_THROW(regs.write(MemometerRegisters::kGranShift, 64), ConfigError);
}

TEST(MemometerRegisters, InvalidContentsReportUnarmedStatus) {
  MemometerRegisters regs;
  regs.write(MemometerRegisters::kCtrl, MemometerRegisters::kCtrlEnable);
  // Size and interval still zero: enabled but not valid.
  EXPECT_TRUE(regs.enabled());
  EXPECT_EQ(regs.read(MemometerRegisters::kStatus), 0u);
  EXPECT_THROW(regs.to_config(), ConfigError);
}

TEST(MemometerRegisters, DeliverPartialFlag) {
  MemometerRegisters regs;
  regs.program(MhmConfig::paper_default(), /*deliver_partial=*/true);
  EXPECT_TRUE(regs.deliver_partial());
  regs.program(MhmConfig::paper_default(), /*deliver_partial=*/false);
  EXPECT_FALSE(regs.deliver_partial());
}

TEST(MemometerRegisters, DrivesARealMemometer) {
  // End-to-end: program registers, build the Memometer from them, feed a
  // burst and check the counters land where the register contents say.
  MemometerRegisters regs;
  MhmConfig want;
  want.base = 0x1000;
  want.size = 32 * 1024;
  want.granularity = 1024;
  want.interval = 5 * kMillisecond;
  regs.program(want);

  Memometer meter(regs.to_config(), 0, nullptr);
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000 + 5 * 1024 + 64,
                             .size_bytes = 4, .sweeps = 1});
  EXPECT_EQ(meter.active_map()[5], 1u);
}

}  // namespace
}  // namespace mhm::hw
