#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/trace_recorder.hpp"
#include "sim/kernel_image.hpp"

namespace mhm::sim {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  KernelImage image_;
  ServiceCatalog catalog_{image_};
  hw::MemoryBus bus_;
  hw::TraceRecorder recorder_;

  void SetUp() override { bus_.attach(&recorder_); }

  Scheduler make_scheduler(std::uint64_t seed = 1) {
    return Scheduler(catalog_, bus_, Rng(seed));
  }

  static TaskSpec simple_task(const std::string& name, SimTime exec,
                              SimTime period) {
    TaskSpec t;
    t.name = name;
    t.exec_time = exec;
    t.period = period;
    t.exec_sigma = 0.0;  // deterministic demand for timing assertions
    return t;
  }
};

TEST_F(SchedulerTest, ReleasesJobsPeriodically) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("t", 1 * kMillisecond, 10 * kMillisecond));
  sched.run_until(100 * kMillisecond);
  const TaskRuntime& t = sched.task("t");
  EXPECT_EQ(t.jobs_released, 10u);
  EXPECT_EQ(t.jobs_completed, 10u);
  EXPECT_EQ(t.deadline_misses, 0u);
}

TEST_F(SchedulerTest, PaperTaskSetMeetsAllDeadlines) {
  Scheduler sched = make_scheduler();
  for (const auto& spec : paper_task_set()) sched.add_task(spec);
  sched.run_until(1 * kSecond);  // 10 hyperperiods
  EXPECT_EQ(sched.stats().deadline_misses, 0u);
  // Expected job counts per task over 1 s.
  EXPECT_EQ(sched.task("FFT").jobs_completed, 100u);
  EXPECT_EQ(sched.task("bitcount").jobs_completed, 50u);
  EXPECT_EQ(sched.task("basicmath").jobs_completed, 20u);
  EXPECT_EQ(sched.task("sha").jobs_completed, 10u);
}

TEST_F(SchedulerTest, CpuUtilizationNearTaskSetLoad) {
  Scheduler sched = make_scheduler();
  for (const auto& spec : paper_task_set()) sched.add_task(spec);
  sched.run_until(2 * kSecond);
  // 78 % load plus syscall service time: busy fraction slightly above 0.78.
  EXPECT_GT(sched.stats().cpu_utilization(), 0.74);
  EXPECT_LT(sched.stats().cpu_utilization(), 0.90);
}

TEST_F(SchedulerTest, RateMonotonicPriorityOrder) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("slow", 1 * kMillisecond, 100 * kMillisecond));
  sched.add_task(simple_task("fast", 1 * kMillisecond, 5 * kMillisecond));
  sched.add_task(simple_task("mid", 1 * kMillisecond, 20 * kMillisecond));
  EXPECT_LT(sched.task("fast").priority, sched.task("mid").priority);
  EXPECT_LT(sched.task("mid").priority, sched.task("slow").priority);
}

TEST_F(SchedulerTest, HigherPriorityTaskPreempts) {
  // Low-priority task with a long job; high-priority task released mid-job.
  // Without preemption the high-priority job would miss its deadline.
  Scheduler sched = make_scheduler();
  TaskSpec low = simple_task("low", 8 * kMillisecond, 100 * kMillisecond);
  TaskSpec high = simple_task("high", 1 * kMillisecond, 4 * kMillisecond);
  high.phase = 2 * kMillisecond;  // released while `low` is running
  sched.add_task(low);
  sched.add_task(high);
  sched.run_until(100 * kMillisecond);
  EXPECT_EQ(sched.stats().deadline_misses, 0u);
  EXPECT_EQ(sched.task("high").jobs_completed, 25u);
  EXPECT_EQ(sched.task("low").jobs_completed, 1u);
}

TEST_F(SchedulerTest, OverloadedSystemMissesDeadlines) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("a", 8 * kMillisecond, 10 * kMillisecond));
  sched.add_task(simple_task("b", 8 * kMillisecond, 10 * kMillisecond));
  sched.run_until(200 * kMillisecond);
  EXPECT_GT(sched.stats().deadline_misses, 0u);
}

TEST_F(SchedulerTest, TicksFireEveryMillisecond) {
  Scheduler sched = make_scheduler();
  // Ticks fire at t = 1, 2, ..., 49 ms inside the half-open window
  // [0, 50 ms); the tick at exactly 50 ms belongs to the next window.
  sched.run_until(50 * kMillisecond);
  EXPECT_EQ(sched.stats().ticks, 49u);
  sched.run_until(51 * kMillisecond);
  EXPECT_EQ(sched.stats().ticks, 50u);  // the 50 ms tick fires on re-entry
}

TEST_F(SchedulerTest, IdlePlusBusyEqualsElapsed) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("t", 2 * kMillisecond, 10 * kMillisecond));
  sched.run_until(500 * kMillisecond);
  EXPECT_EQ(sched.stats().idle_time + sched.stats().busy_time,
            500 * kMillisecond);
}

TEST_F(SchedulerTest, ContextSwitchesCounted) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("a", 1 * kMillisecond, 10 * kMillisecond));
  sched.add_task(simple_task("b", 1 * kMillisecond, 10 * kMillisecond));
  sched.run_until(100 * kMillisecond);
  // At least two switches per 10 ms frame (idle->a, a->b).
  EXPECT_GE(sched.stats().context_switches, 20u);
}

TEST_F(SchedulerTest, EmitsKernelTrafficOntoBus) {
  Scheduler sched = make_scheduler();
  for (const auto& spec : paper_task_set()) sched.add_task(spec);
  sched.run_until(100 * kMillisecond);
  EXPECT_GT(recorder_.bursts().size(), 100u);
  // Some bursts inside kernel text (syscalls/ticks), some outside (user).
  std::size_t kernel = 0;
  std::size_t user = 0;
  for (const auto& b : recorder_.bursts()) {
    if (b.base >= image_.base() && b.base < image_.text_end()) {
      ++kernel;
    } else {
      ++user;
    }
  }
  EXPECT_GT(kernel, 0u);
  EXPECT_GT(user, 0u);
}

TEST_F(SchedulerTest, AddTaskRejectsDuplicates) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("t", 1 * kMillisecond, 10 * kMillisecond));
  EXPECT_THROW(
      sched.add_task(simple_task("t", 1 * kMillisecond, 10 * kMillisecond)),
      ConfigError);
}

TEST_F(SchedulerTest, KillTaskStopsReleases) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("t", 1 * kMillisecond, 10 * kMillisecond));
  sched.run_until(50 * kMillisecond);
  sched.kill_task("t");
  const auto jobs_at_kill = sched.task("t").jobs_released;
  sched.run_until(200 * kMillisecond);
  EXPECT_EQ(sched.task("t").jobs_released, jobs_at_kill);
  EXPECT_FALSE(sched.task("t").active);
  EXPECT_THROW(sched.kill_task("t"), ConfigError);
}

TEST_F(SchedulerTest, RuntimeLaunchStartsReleasingJobs) {
  Scheduler sched = make_scheduler();
  sched.run_until(30 * kMillisecond);
  sched.add_task(simple_task("late", 1 * kMillisecond, 10 * kMillisecond),
                 /*emit_launch=*/true);
  sched.run_until(130 * kMillisecond);
  EXPECT_GE(sched.task("late").jobs_completed, 9u);
}

TEST_F(SchedulerTest, PayloadInjectionRunsOnceThenKills) {
  Scheduler sched = make_scheduler();
  TaskSpec victim = simple_task("victim", 1 * kMillisecond, 10 * kMillisecond);
  sched.add_task(victim);
  sched.run_until(25 * kMillisecond);
  sched.inject_payload("victim", {"sys_personality", "do_execve"},
                       /*kill_host=*/true);
  sched.run_until(100 * kMillisecond);
  EXPECT_FALSE(sched.task("victim").active);
  // The victim stopped mid-run: it completed the payload job and no more.
  EXPECT_LT(sched.task("victim").jobs_completed, 5u);
}

TEST_F(SchedulerTest, PayloadWithoutKillKeepsTaskAlive) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("victim", 1 * kMillisecond, 10 * kMillisecond));
  sched.run_until(25 * kMillisecond);
  sched.inject_payload("victim", {"sys_mprotect"}, /*kill_host=*/false);
  sched.run_until(100 * kMillisecond);
  EXPECT_TRUE(sched.task("victim").active);
  EXPECT_EQ(sched.task("victim").jobs_completed, 10u);
}

TEST_F(SchedulerTest, PayloadValidatesServiceNames) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("t", 1 * kMillisecond, 10 * kMillisecond));
  EXPECT_THROW(sched.inject_payload("t", {"no_such_service"}, false),
               ConfigError);
  EXPECT_THROW(sched.inject_payload("ghost", {"sys_read"}, false),
               ConfigError);
}

TEST_F(SchedulerTest, ServiceLatencyDelaysCompletion) {
  // A task issuing many reads finishes later when reads are hijacked.
  auto run_completion_time = [&](SimTime extra) {
    hw::MemoryBus bus;
    Scheduler sched(catalog_, bus, Rng(7));
    TaskSpec t = simple_task("reader", 5 * kMillisecond, 50 * kMillisecond);
    t.syscalls = {{.service = "sys_read", .calls_per_job = 50}};
    sched.add_task(t);
    if (extra > 0) sched.set_service_latency("sys_read", extra);
    sched.run_until(40 * kMillisecond);
    return sched.stats().busy_time;
  };
  const SimTime plain = run_completion_time(0);
  const SimTime hijacked = run_completion_time(100 * kMicrosecond);
  // 50 reads * 100 us = 5 ms extra busy time.
  EXPECT_GT(hijacked, plain + 4 * kMillisecond);
}

TEST_F(SchedulerTest, ScheduledActionsFireInOrder) {
  Scheduler sched = make_scheduler();
  std::vector<int> fired;
  sched.at(20 * kMillisecond, [&] { fired.push_back(2); });
  sched.at(10 * kMillisecond, [&] { fired.push_back(1); });
  sched.at(30 * kMillisecond, [&] { fired.push_back(3); });
  sched.run_until(50 * kMillisecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_F(SchedulerTest, ActionInThePastThrows) {
  Scheduler sched = make_scheduler();
  sched.run_until(10 * kMillisecond);
  EXPECT_THROW(sched.at(5 * kMillisecond, [] {}), LogicError);
}

TEST_F(SchedulerTest, TaskLookupThrowsForUnknownName) {
  Scheduler sched = make_scheduler();
  EXPECT_THROW(sched.task("nope"), ConfigError);
}

TEST_F(SchedulerTest, DeterministicGivenSeed) {
  auto run = [&](std::uint64_t seed) {
    hw::MemoryBus bus;
    hw::TraceRecorder rec;
    bus.attach(&rec);
    Scheduler sched(catalog_, bus, Rng(seed));
    for (const auto& spec : paper_task_set()) sched.add_task(spec);
    sched.run_until(200 * kMillisecond);
    return rec.total_accesses();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST_F(SchedulerTest, ResponseTimesTrackExecutionDemand) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("t", 2 * kMillisecond, 10 * kMillisecond));
  sched.run_until(500 * kMillisecond);
  const TaskRuntime& t = sched.task("t");
  // Alone on the CPU, each job responds in ~its execution time (plus small
  // syscall/tick perturbation).
  EXPECT_GE(t.mean_response(), 2 * kMillisecond);
  EXPECT_LT(t.mean_response(), 3 * kMillisecond);
  EXPECT_GE(t.worst_response, t.mean_response());
  EXPECT_LT(t.worst_response, 4 * kMillisecond);
}

TEST_F(SchedulerTest, LowPriorityTaskHasLongerResponseUnderInterference) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("fast", 2 * kMillisecond, 5 * kMillisecond));
  sched.add_task(simple_task("slow", 3 * kMillisecond, 50 * kMillisecond));
  sched.run_until(1 * kSecond);
  const TaskRuntime& slow = sched.task("slow");
  // `slow` is preempted by `fast` (40 % load): its 3 ms of work takes
  // visibly longer than 3 ms to complete.
  EXPECT_GT(slow.worst_response, 4 * kMillisecond);
  EXPECT_EQ(slow.deadline_misses, 0u);
}

TEST_F(SchedulerTest, BlockCpuStallsAllTasks) {
  Scheduler sched = make_scheduler();
  sched.add_task(simple_task("t", 1 * kMillisecond, 10 * kMillisecond));
  sched.at(20 * kMillisecond, [&] { sched.block_cpu(5 * kMillisecond); });
  sched.run_until(100 * kMillisecond);
  const TaskRuntime& t = sched.task("t");
  // The job released at 20 ms could not start before 25 ms.
  EXPECT_GE(t.worst_response, 6 * kMillisecond);
  EXPECT_EQ(sched.stats().deadline_misses, 0u);
}

TEST_F(SchedulerTest, SyscallsAreCounted) {
  Scheduler sched = make_scheduler();
  TaskSpec t = simple_task("t", 2 * kMillisecond, 10 * kMillisecond);
  t.syscalls = {{.service = "sys_write", .calls_per_job = 3}};
  sched.add_task(t);
  sched.run_until(100 * kMillisecond);
  // ~3 syscalls per job, 10 jobs (jitter on call counts allows slack).
  EXPECT_GE(sched.stats().syscalls, 20u);
  EXPECT_LE(sched.stats().syscalls, 45u);
}

}  // namespace
}  // namespace mhm::sim
