// Tests for the extended workload features: the avionics harmonic task
// set, workload jitter scaling (RTOS vs noisy GPOS) and device-interrupt
// traffic.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/detector.hpp"
#include "sim/system.hpp"
#include "sim/task.hpp"

namespace mhm::sim {
namespace {

SystemConfig small_config(std::uint64_t seed = 1) {
  SystemConfig cfg = SystemConfig::paper_default(seed);
  cfg.monitor.granularity = 8 * 1024;
  return cfg;
}

TEST(AvionicsTaskSet, IsHarmonic) {
  const auto tasks = avionics_task_set();
  ASSERT_EQ(tasks.size(), 5u);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].period % tasks[i - 1].period, 0u)
        << tasks[i].name << " period must be a multiple of "
        << tasks[i - 1].name;
  }
  // Harmonic set: hyperperiod == slowest period.
  EXPECT_EQ(hyperperiod(tasks), 80 * kMillisecond);
}

TEST(AvionicsTaskSet, UtilizationIsSchedulable) {
  const double u = total_utilization(avionics_task_set());
  EXPECT_GT(u, 0.6);
  // Harmonic sets are RM-schedulable up to 100 %.
  EXPECT_LT(u, 1.0);
}

TEST(AvionicsTaskSet, MeetsAllDeadlines) {
  SystemConfig cfg = small_config();
  cfg.tasks = avionics_task_set();
  System system(cfg);
  system.run_for(1 * kSecond);
  EXPECT_EQ(system.scheduler().stats().deadline_misses, 0u);
  EXPECT_EQ(system.scheduler().task("attitude_ctrl").jobs_completed, 200u);
  // 13 releases (t = 0, 80, ..., 960 ms); the last may or may not finish
  // inside the horizon.
  EXPECT_GE(system.scheduler().task("telemetry").jobs_completed, 12u);
  EXPECT_LE(system.scheduler().task("telemetry").jobs_completed, 13u);
}

TEST(JitterScale, ZeroJitterGivesRepeatingSamePhaseMaps) {
  // With jitter_scale = 0 the only remaining variability is syscall
  // placement slack; same-phase intervals must correlate near-perfectly.
  SystemConfig cfg = small_config(3);
  cfg.jitter_scale = 0.0;
  cfg.kworker_mean_period = 0;  // kworker arrivals are the one async source
  System system(cfg);
  system.run_for(1 * kSecond);
  const auto& trace = system.trace();
  ASSERT_GE(trace.size(), 40u);
  double min_corr = 1.0;
  for (std::size_t i = 20; i < 30; ++i) {
    min_corr = std::min(min_corr, pearson_correlation(trace[i].as_vector(),
                                                      trace[i + 10].as_vector()));
  }
  EXPECT_GT(min_corr, 0.98);
}

TEST(JitterScale, HigherJitterRaisesMapVariability) {
  auto dispersion = [](double jitter) {
    SystemConfig cfg = small_config(4);
    cfg.jitter_scale = jitter;
    System system(cfg);
    system.run_for(2 * kSecond);
    const auto& trace = system.trace();
    // Mean coefficient of variation of per-interval totals within a phase.
    RunningStats per_phase[10];
    for (const auto& m : trace) {
      per_phase[m.interval_index % 10].add(
          static_cast<double>(m.total_accesses()));
    }
    double cv = 0.0;
    for (const auto& s : per_phase) cv += s.stddev() / s.mean();
    return cv / 10.0;
  };
  const double tight = dispersion(0.0);
  const double loose = dispersion(2.0);
  EXPECT_LT(tight, loose);
}

TEST(JitterScale, NegativeScaleRejected) {
  SystemConfig cfg = small_config();
  cfg.jitter_scale = -0.5;
  EXPECT_THROW(System{cfg}, ConfigError);
}

TEST(DeviceIrq, GeneratesIrqTraffic) {
  // Compare irq-subsystem traffic with and without device interrupts.
  auto irq_cell_total = [](SimTime irq_period) {
    SystemConfig cfg = small_config(5);
    cfg.device_irq_mean_period = irq_period;
    System system(cfg);
    system.run_for(500 * kMillisecond);
    // The irq subsystem's cells: find its address range.
    const auto& sub = system.kernel().subsystem("irq");
    const std::size_t first_cell = static_cast<std::size_t>(
        (sub.begin - cfg.monitor.base) / cfg.monitor.granularity);
    const std::size_t last_cell = static_cast<std::size_t>(
        (sub.end - 1 - cfg.monitor.base) / cfg.monitor.granularity);
    std::uint64_t total = 0;
    for (const auto& m : system.trace()) {
      for (std::size_t c = first_cell; c <= last_cell; ++c) total += m[c];
    }
    return total;
  };
  const std::uint64_t without = irq_cell_total(0);
  const std::uint64_t with = irq_cell_total(2 * kMillisecond);
  EXPECT_GT(with, without + without / 10);
}

TEST(DeviceIrq, DoesNotDisturbSchedulability) {
  SystemConfig cfg = small_config(6);
  cfg.device_irq_mean_period = 1 * kMillisecond;
  System system(cfg);
  system.run_for(1 * kSecond);
  EXPECT_EQ(system.scheduler().stats().deadline_misses, 0u);
}

TEST(AvionicsWorkload, DetectorWorksOnAlternativeTaskSet) {
  // The pipeline is workload-agnostic: train on the avionics set and
  // verify an injected app is still detected.
  SystemConfig cfg = small_config(7);
  cfg.tasks = avionics_task_set();

  HeatMapTrace training;
  HeatMapTrace validation;
  for (std::uint64_t run = 0; run < 3; ++run) {
    SystemConfig c = cfg;
    c.seed = 100 + run;
    System system(c);
    system.run_for(1 * kSecond);
    auto maps = system.take_trace();
    auto& dest = (run < 2) ? training : validation;
    dest.insert(dest.end(), maps.begin(), maps.end());
  }
  AnomalyDetector::Options opts;
  opts.pca.components = 8;
  opts.gmm.components = 4;
  opts.gmm.restarts = 3;
  const auto detector = AnomalyDetector::train(training, validation, opts);

  SystemConfig attacked_cfg = cfg;
  attacked_cfg.seed = 999;
  System attacked(attacked_cfg);
  std::vector<Verdict> verdicts;
  attacked.set_interval_observer([&](const HeatMap& m) {
    verdicts.push_back(detector.analyze(m));
  });
  attacked.at(1 * kSecond, [&] { attacked.launch_task(qsort_task_spec()); });
  attacked.run_for(2 * kSecond);

  std::size_t post_alarms = 0;
  std::size_t pre_alarms = 0;
  for (const auto& v : verdicts) {
    (v.interval_index >= 100 ? post_alarms : pre_alarms) += v.anomalous;
  }
  // The launch must produce clearly more alarms than the calibration noise.
  EXPECT_GT(post_alarms, 5u);
  EXPECT_GT(post_alarms, 2 * pre_alarms);
}

}  // namespace
}  // namespace mhm::sim
