#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mhm::sim {
namespace {

SystemConfig small_config(std::uint64_t seed = 1) {
  SystemConfig cfg = SystemConfig::paper_default(seed);
  cfg.monitor.granularity = 8 * 1024;  // fewer cells, faster tests
  return cfg;
}

TEST(System, PaperDefaultConfiguration) {
  const SystemConfig cfg = SystemConfig::paper_default();
  EXPECT_EQ(cfg.monitor.cell_count(), 1472u);
  EXPECT_EQ(cfg.tasks.size(), 4u);
  EXPECT_EQ(cfg.snoop_point, SnoopPoint::PreL1);
  EXPECT_NO_THROW(System{cfg});
}

TEST(System, ProducesOneMapPerInterval) {
  System system(small_config());
  system.run_for(500 * kMillisecond);
  // 10 ms intervals over 500 ms -> 50 completed maps.
  EXPECT_EQ(system.trace().size(), 50u);
  for (std::size_t i = 0; i < system.trace().size(); ++i) {
    EXPECT_EQ(system.trace()[i].interval_index, i);
  }
}

TEST(System, MapsContainPlausibleTraffic) {
  System system(small_config());
  system.run_for(500 * kMillisecond);
  for (const auto& map : system.trace()) {
    // Figure 9 shows roughly 10^4..10^5 accesses per 10 ms interval.
    EXPECT_GT(map.total_accesses(), 1'000u) << summarize(map);
    EXPECT_LT(map.total_accesses(), 10'000'000u) << summarize(map);
    EXPECT_GT(map.active_cells(), 5u);
  }
}

TEST(System, DeterministicForSameSeed) {
  System a(small_config(7));
  System b(small_config(7));
  a.run_for(300 * kMillisecond);
  b.run_for(300 * kMillisecond);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (std::size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i].counts(), b.trace()[i].counts()) << "map " << i;
  }
}

TEST(System, DifferentSeedsDiffer) {
  System a(small_config(1));
  System b(small_config(2));
  a.run_for(200 * kMillisecond);
  b.run_for(200 * kMillisecond);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.trace().size(); ++i) {
    any_diff |= a.trace()[i].counts() != b.trace()[i].counts();
  }
  EXPECT_TRUE(any_diff);
}

TEST(System, IntervalObserverSeesEveryMap) {
  System system(small_config());
  std::size_t observed = 0;
  system.set_interval_observer([&](const HeatMap&) { ++observed; });
  system.run_for(200 * kMillisecond);
  EXPECT_EQ(observed, system.trace().size());
}

TEST(System, TakeTraceMovesAndClears) {
  System system(small_config());
  system.run_for(100 * kMillisecond);
  const auto trace = system.take_trace();
  EXPECT_EQ(trace.size(), 10u);
  EXPECT_TRUE(system.trace().empty());
}

TEST(System, RejectsMonitorOutsideKernelText) {
  SystemConfig cfg = small_config();
  cfg.monitor.base = 0x1000;  // not in kernel .text
  EXPECT_THROW(System{cfg}, ConfigError);
}

TEST(System, RejectsIntervalNotMultipleOfTick) {
  SystemConfig cfg = small_config();
  cfg.monitor.interval = 1500 * kMicrosecond;
  EXPECT_THROW(System{cfg}, ConfigError);
}

TEST(System, MonitoredTrafficConfinedToRegion) {
  // Every counted access must come from inside [base, base+size): totals
  // of the memometer must match the sum over all maps.
  System system(small_config());
  system.run_for(300 * kMillisecond);
  std::uint64_t sum = 0;
  for (const auto& m : system.trace()) sum += m.total_accesses();
  // Active (incomplete) interval may hold more counts not yet delivered.
  EXPECT_GE(system.memometer().accesses_counted(), sum);
  EXPECT_GT(system.memometer().accesses_filtered_out(), 0u);  // user traffic
}

TEST(System, HyperperiodPhasesProduceRepeatingPatterns) {
  // The 100 ms hyperperiod spans 10 intervals: interval i and i+10 share
  // the same task phases, so their maps must correlate strongly more often
  // than maps at unrelated phases.
  System system(small_config(3));
  system.run_for(2 * kSecond);
  const auto& trace = system.trace();
  ASSERT_GE(trace.size(), 60u);

  auto correlation = [&](std::size_t a, std::size_t b) {
    return pearson_correlation(trace[a].as_vector(), trace[b].as_vector());
  };
  double same_phase = 0.0;
  double other_phase = 0.0;
  int n = 0;
  for (std::size_t i = 20; i < 50; ++i) {
    same_phase += correlation(i, i + 10);
    other_phase += correlation(i, i + 13);
    ++n;
  }
  EXPECT_GT(same_phase / n, other_phase / n);
}

TEST(System, PostL1SnoopSeesFewerAccesses) {
  // §5.5: below the cache, hits are invisible -> far less traffic.
  SystemConfig pre = small_config(4);
  SystemConfig post = small_config(4);
  post.snoop_point = SnoopPoint::PostL1;

  System sys_pre(pre);
  System sys_post(post);
  sys_pre.run_for(300 * kMillisecond);
  sys_post.run_for(300 * kMillisecond);

  std::uint64_t pre_total = 0;
  std::uint64_t post_total = 0;
  for (const auto& m : sys_pre.trace()) pre_total += m.total_accesses();
  for (const auto& m : sys_post.trace()) post_total += m.total_accesses();
  EXPECT_LT(post_total, pre_total / 2);
  EXPECT_GT(post_total, 0u);
  ASSERT_NE(sys_post.l1_cache(), nullptr);
  EXPECT_GT(sys_post.l1_cache()->hit_rate(), 0.5);
}

TEST(System, PostL2SnoopSeesEvenFewer) {
  SystemConfig post1 = small_config(5);
  post1.snoop_point = SnoopPoint::PostL1;
  SystemConfig post2 = small_config(5);
  post2.snoop_point = SnoopPoint::PostL2;

  System a(post1);
  System b(post2);
  a.run_for(300 * kMillisecond);
  b.run_for(300 * kMillisecond);

  std::uint64_t l1_total = 0;
  std::uint64_t l2_total = 0;
  for (const auto& m : a.trace()) l1_total += m.total_accesses();
  for (const auto& m : b.trace()) l2_total += m.total_accesses();
  EXPECT_LE(l2_total, l1_total);
  ASSERT_NE(b.l2_cache(), nullptr);
}

TEST(System, RuntimeTaskManipulationHooks) {
  System system(small_config());
  system.run_for(100 * kMillisecond);
  system.launch_task(qsort_task_spec());
  system.run_for(100 * kMillisecond);
  EXPECT_GT(system.scheduler().task("qsort").jobs_completed, 0u);
  system.kill_task("qsort");
  const auto jobs = system.scheduler().task("qsort").jobs_completed;
  system.run_for(100 * kMillisecond);
  EXPECT_EQ(system.scheduler().task("qsort").jobs_completed, jobs);
}

TEST(System, ScheduledActionRuns) {
  System system(small_config());
  bool fired = false;
  system.at(50 * kMillisecond, [&] { fired = true; });
  system.run_for(100 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST(System, KworkerCanBeDisabled) {
  SystemConfig cfg = small_config(6);
  cfg.kworker_mean_period = 0;
  System system(cfg);
  system.run_for(200 * kMillisecond);
  EXPECT_EQ(system.trace().size(), 20u);
}

TEST(System, EmptyTaskSetStillProducesMaps) {
  // A bare kernel (no application tasks): the tick, idle loop and kworker
  // still touch kernel .text, so MHMs keep flowing — the monitoring plane
  // must not depend on application activity.
  SystemConfig cfg = small_config(9);
  cfg.tasks.clear();
  System system(cfg);
  system.run_for(300 * kMillisecond);
  EXPECT_EQ(system.trace().size(), 30u);
  for (const auto& m : system.trace()) {
    EXPECT_GT(m.total_accesses(), 0u);
  }
  EXPECT_EQ(system.scheduler().stats().jobs_released, 0u);
  EXPECT_EQ(system.scheduler().stats().busy_time, 0u);
}

TEST(System, IdleOnlySystemMapsAreHighlyRegular) {
  // With nothing but periodic kernel housekeeping, same-phase maps should
  // be nearly identical — the degenerate base case of the MHM idea.
  SystemConfig cfg = small_config(10);
  cfg.tasks.clear();
  cfg.kworker_mean_period = 0;
  System system(cfg);
  system.run_for(500 * kMillisecond);
  const auto& trace = system.trace();
  for (std::size_t i = 11; i < 40; ++i) {
    EXPECT_GT(pearson_correlation(trace[i].as_vector(),
                                  trace[i - 1].as_vector()),
              0.99)
        << "interval " << i;
  }
}

TEST(System, NoDeadlineMissesInNormalOperation) {
  System system(small_config(8));
  system.run_for(1 * kSecond);
  EXPECT_EQ(system.scheduler().stats().deadline_misses, 0u);
}

}  // namespace
}  // namespace mhm::sim
