#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mhm {
namespace {

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squares = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), LogicError);
  EXPECT_THROW(s.variance(), LogicError);
  EXPECT_THROW(s.min(), LogicError);
  EXPECT_THROW(s.max(), LogicError);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(1);
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(2.0, 3.0);
    combined.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(Quantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  // Sorted: 10, 20, 30, 40. p = 0.5 -> position 1.5 -> 25.
  EXPECT_DOUBLE_EQ(quantile({40.0, 10.0, 30.0, 20.0}, 0.5), 25.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), ConfigError);
  EXPECT_THROW(quantile({1.0}, -0.1), ConfigError);
  EXPECT_THROW(quantile({1.0}, 1.1), ConfigError);
}

TEST(Quantile, ApproximatesTrueQuantileOnLargeSample) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 100000; ++i) v.push_back(rng.uniform());
  EXPECT_NEAR(quantile(v, 0.005), 0.005, 0.002);
  EXPECT_NEAR(quantile(v, 0.99), 0.99, 0.002);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean_of({}), ConfigError);
}

TEST(PearsonCorrelation, PerfectPositive) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(pearson_correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonCorrelation, RejectsMismatch) {
  EXPECT_THROW(pearson_correlation({1.0}, {1.0, 2.0}), ConfigError);
  EXPECT_THROW(pearson_correlation({}, {}), ConfigError);
}

TEST(ConfusionCounts, RatesComputeCorrectly) {
  ConfusionCounts c;
  c.true_positives = 8;
  c.false_negatives = 2;
  c.false_positives = 1;
  c.true_negatives = 9;
  EXPECT_DOUBLE_EQ(c.true_positive_rate(), 0.8);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.1);
  EXPECT_NEAR(c.precision(), 8.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.85);
}

TEST(ConfusionCounts, EmptyDenominatorsAreZero) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.true_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
}

TEST(EvaluateThreshold, CountsLowerIsAnomalous) {
  // Normal scores high, anomalies low; threshold between.
  const std::vector<double> normal = {-10, -11, -9, -30};
  const std::vector<double> anomaly = {-50, -45, -12};
  const auto c = evaluate_threshold(normal, anomaly, -20.0);
  EXPECT_EQ(c.true_negatives, 3u);
  EXPECT_EQ(c.false_positives, 1u);   // the -30 normal
  EXPECT_EQ(c.true_positives, 2u);    // -50, -45
  EXPECT_EQ(c.false_negatives, 1u);   // the -12 anomaly
}

TEST(RocAuc, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(roc_auc({-1, -2, -3}, {-10, -20}), 1.0);
}

TEST(RocAuc, NoSeparationIsHalf) {
  const std::vector<double> same = {-5, -5, -5};
  EXPECT_NEAR(roc_auc(same, same), 0.5, 1e-12);
}

TEST(RocAuc, InvertedScoresGiveZero) {
  EXPECT_DOUBLE_EQ(roc_auc({-10, -20}, {-1, -2}), 0.0);
}

TEST(RocAuc, PartialOverlap) {
  // anomalies: -4, -2 | normals: -3, -1.
  // Pairs (anomaly < normal): (-4,-3)✓, (-4,-1)✓, (-2,-3)✗, (-2,-1)✓ -> 3/4.
  EXPECT_DOUBLE_EQ(roc_auc({-3, -1}, {-4, -2}), 0.75);
}

TEST(RocAuc, RejectsEmptyClasses) {
  EXPECT_THROW(roc_auc({}, {-1.0}), ConfigError);
  EXPECT_THROW(roc_auc({-1.0}, {}), ConfigError);
}

TEST(Histogram, BinsCorrectly) {
  const auto h = histogram({0.1, 0.2, 0.6, 0.9}, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);
  EXPECT_EQ(h[1], 2u);
}

TEST(Histogram, ClampsOutOfRange) {
  const auto h = histogram({-5.0, 5.0}, 0.0, 1.0, 4);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[3], 1u);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(histogram({1.0}, 0.0, 1.0, 0), ConfigError);
  EXPECT_THROW(histogram({1.0}, 1.0, 0.0, 4), ConfigError);
}

}  // namespace
}  // namespace mhm
