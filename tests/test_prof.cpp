// Continuous profiler: stage zone accumulation, nesting dedup, the counter
// fallback, collapsed-stack shape, the sampling profiler, and the
// determinism contract — toggling profiling must not change a verdict bit.

#include "obs/prof.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "attacks/attacks.hpp"
#include "obs/obs.hpp"
#include "pipeline/experiment.hpp"

namespace mhm::obs::prof {
namespace {

/// Enables obs + profiling for the test body and restores both after.
class ProfGuard {
 public:
  ProfGuard() : obs_was_(obs::enabled()), prof_was_(prof_enabled()) {
    obs::set_enabled(true);
    set_prof_enabled(true);
  }
  ~ProfGuard() {
    set_prof_enabled(prof_was_);
    obs::set_enabled(obs_was_);
  }

 private:
  bool obs_was_;
  bool prof_was_;
};

/// Burns a little CPU so a zone's wall time is reliably non-zero.
std::uint64_t spin(std::uint64_t iters = 20'000) {
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) acc = acc + i * i;
  return acc;
}

StageSnapshot stage_of(const std::vector<StageSnapshot>& stages,
                       const std::string& name) {
  for (const auto& s : stages) {
    if (name == s.name) return s;
  }
  ADD_FAILURE() << "stage '" << name << "' missing from snapshot";
  return {};
}

TEST(ProfStages, NamesAreStableExportIdentifiers) {
  EXPECT_STREQ(stage_name(Stage::kAnalyze), "analyze");
  EXPECT_STREQ(stage_name(Stage::kScoreProject), "score.project");
  EXPECT_STREQ(stage_name(Stage::kScoreGmm), "score.gmm");
  EXPECT_STREQ(stage_name(Stage::kScoreSpe), "score.spe");
  EXPECT_STREQ(stage_name(Stage::kScoreObserve), "score.observe");
  EXPECT_STREQ(stage_name(Stage::kShardGather), "shard.gather");
  EXPECT_STREQ(stage_name(Stage::kShardScatter), "shard.scatter");
  EXPECT_STREQ(stage_name(Stage::kTrainCovariance), "train.covariance");
  EXPECT_STREQ(stage_name(Stage::kTrainEigensolve), "train.eigensolve");
  EXPECT_STREQ(stage_name(Stage::kTrainEm), "train.em");
}

TEST(ProfZones, AccumulateEntriesAndWallTime) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  for (int i = 0; i < 4; ++i) {
    PROF_ZONE(kScoreProject);
    spin();
  }
  const auto stages = snapshot_stages();
  ASSERT_EQ(stages.size(), kStageCount);
  const StageSnapshot project = stage_of(stages, "score.project");
  EXPECT_EQ(project.entries, 4u);
  EXPECT_GT(project.wall_ns, 0u);
  // Counters ride every one of the first few entries, whichever source.
  EXPECT_GT(project.counter_samples, 0u);
  // Untouched stages stay zero.
  EXPECT_EQ(stage_of(stages, "train.em").entries, 0u);
  reset();
  EXPECT_EQ(stage_of(snapshot_stages(), "score.project").entries, 0u);
}

TEST(ProfZones, NestedSameStageRecordsOnlyOutermost) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  {
    PROF_ZONE(kAnalyze);
    {
      // The shard serial fallback: analyze_shard's umbrella wraps per-
      // session analyze calls that each open their own kAnalyze zone.
      PROF_ZONE(kAnalyze);
      spin();
    }
    {
      PROF_ZONE(kAnalyze);
      spin();
    }
  }
  const StageSnapshot analyze = stage_of(snapshot_stages(), "analyze");
  EXPECT_EQ(analyze.entries, 1u) << "inner zones must not double-count";
  reset();
}

TEST(ProfZones, DisabledProfilingRecordsNothing) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  set_prof_enabled(false);
  {
    PROF_ZONE(kScoreGmm);
    spin();
  }
  EXPECT_EQ(stage_of(snapshot_stages(), "score.gmm").entries, 0u);
  set_prof_enabled(true);
}

TEST(ProfZones, ConcurrentZonesFoldAcrossThreadShards) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kEntriesPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kEntriesPerThread; ++i) {
        PROF_ZONE(kScoreSpe);
        spin(50);
      }
    });
  }
  for (auto& t : threads) t.join();
  const StageSnapshot spe = stage_of(snapshot_stages(), "score.spe");
  EXPECT_EQ(spe.entries, kThreads * kEntriesPerThread);
  EXPECT_GT(spe.wall_ns, 0u);
  reset();
}

TEST(ProfCounters, SourceIsStableAndNamed) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  const std::string source = counter_source();
  // Probed once; the answer must be one of the two real sources and must
  // not flip between calls. (MHM_PROF_NO_PERF=1 forces "thread_cputime" —
  // the CI smoke job asserts that on a fresh process.)
  EXPECT_TRUE(source == "perf_event" || source == "thread_cputime")
      << source;
  EXPECT_EQ(source, counter_source());
}

TEST(ProfCounters, ThreadWorkCounterIsMonotone) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  const std::uint64_t w0 = thread_work_counter();
  spin(200'000);
  const std::uint64_t w1 = thread_work_counter();
  EXPECT_GE(w1, w0);
  EXPECT_GT(w1, 0u) << "counter must advance while profiling is enabled";
}

TEST(ProfExport, ProfileJsonCarriesStagesAndAttribution) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  {
    PROF_ZONE(kAnalyze);
    {
      PROF_ZONE(kScoreProject);
      spin();
    }
    {
      PROF_ZONE(kScoreGmm);
      spin();
    }
  }
  const std::string json = profile_json();
  EXPECT_NE(json.find("\"source\":"), std::string::npos);
  EXPECT_NE(json.find("\"sampler\":"), std::string::npos);
  EXPECT_NE(json.find("\"analyze_wall_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"attributed_fraction\":"), std::string::npos);
  EXPECT_NE(json.find("\"top_scoring_stage\":\"score."), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"score.project\""), std::string::npos);
  EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\":"), std::string::npos);
  reset();
}

TEST(ProfExport, CollapsedStacksAreFlamegraphLoadable) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  {
    PROF_ZONE(kAnalyze);
    PROF_ZONE(kScoreProject);
    spin(2'000'000);  // ≥1 µs so the microsecond weight is non-zero.
  }
  const std::string collapsed = collapsed_stacks();
  ASSERT_FALSE(collapsed.empty());
  // Every line must be "frame(;frame)* <count>" — the flamegraph.pl /
  // speedscope collapsed grammar.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < collapsed.size()) {
    std::size_t end = collapsed.find('\n', start);
    if (end == std::string::npos) end = collapsed.size();
    const std::string line = collapsed.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
    }
    EXPECT_NE(line[0], ';') << line;
    EXPECT_NE(line[space - 1], ';') << line;
  }
  EXPECT_GT(lines, 0u);
  // The zone-derived fallback chains stages under their umbrella.
  EXPECT_NE(collapsed.find("analyze;score.project "), std::string::npos)
      << collapsed;
  reset();
}

TEST(ProfExport, DumpSectionListsActiveStages) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  {
    PROF_ZONE(kScoreGmm);
    spin();
  }
  const std::string section = dump_section();
  EXPECT_NE(section.find("score.gmm"), std::string::npos) << section;
  reset();
}

TEST(ProfSampler, StartStopIsIdempotentAndCollectsStacks) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  reset();
  start_sampler(997.0);  // Prime and fast, so the test stays short.
  start_sampler(997.0);  // Second start is a no-op, not a second thread.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (std::chrono::steady_clock::now() < deadline) {
    PROF_ZONE(kScoreProject);
    spin(5'000);
    if (sampler_samples() > 0) break;
  }
  stop_sampler();
  stop_sampler();
  EXPECT_GT(sampler_samples(), 0u)
      << "a ~1 kHz sampler must catch a busy zone within 500 ms";
  reset();
}

/// Shares one trained fast pipeline across the determinism tests.
class ProfDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipe_ = new pipeline::TrainedPipeline(pipeline::train_pipeline(
        pipeline::fast_test_config(), pipeline::fast_test_plan(),
        pipeline::fast_test_detector_options()));
  }
  static void TearDownTestSuite() {
    delete pipe_;
    pipe_ = nullptr;
  }

  static pipeline::TrainedPipeline* pipe_;
};

pipeline::TrainedPipeline* ProfDeterminismTest::pipe_ = nullptr;

TEST_F(ProfDeterminismTest, VerdictsAreBitIdenticalWithProfilingToggled) {
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  ProfGuard guard;
  attacks::ShellcodeAttack attack("bitcount");
  set_prof_enabled(true);
  const pipeline::ScenarioRun on = pipeline::run_scenario(
      pipeline::fast_test_config(), &attack, 1 * kSecond, 2 * kSecond,
      pipe_->detector.get(), 42);
  set_prof_enabled(false);
  const pipeline::ScenarioRun off = pipeline::run_scenario(
      pipeline::fast_test_config(), &attack, 1 * kSecond, 2 * kSecond,
      pipe_->detector.get(), 42);
  ASSERT_EQ(on.verdicts.size(), off.verdicts.size());
  ASSERT_FALSE(on.verdicts.empty());
  for (std::size_t i = 0; i < on.verdicts.size(); ++i) {
    EXPECT_EQ(on.verdicts[i].log10_density, off.verdicts[i].log10_density);
    EXPECT_EQ(on.verdicts[i].spe, off.verdicts[i].spe);
    EXPECT_EQ(on.verdicts[i].anomalous, off.verdicts[i].anomalous);
    EXPECT_EQ(on.verdicts[i].nearest_pattern, off.verdicts[i].nearest_pattern);
  }
}

}  // namespace
}  // namespace mhm::obs::prof
