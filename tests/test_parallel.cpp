// The deterministic parallel runtime's contract: for a fixed input and seed,
// every result in the repository is bit-identical at any thread count —
// including 1, which must also match the historical serial code. These tests
// sweep thread counts {1, 2, 8} over the ThreadPool primitives and the three
// parallelized hot paths (trace collection, Eigenmemory::fit, Gmm::fit).

#include "common/parallel.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/gmm.hpp"
#include "core/pca.hpp"
#include "pipeline/experiment.hpp"

namespace mhm {
namespace {

/// Restores the global pool default even if a test fails mid-sweep.
class GlobalThreadsGuard {
 public:
  ~GlobalThreadsGuard() { set_global_threads(0); }
};

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ThreadPool pool(threads);
    const std::size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 37, [&](std::size_t begin, std::size_t end) {
      ASSERT_LE(begin, end);
      ASSERT_LE(end, n);
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, EmptyAndSingleChunkRanges) {
  ThreadPool pool(4);
  std::size_t calls = 0;
  pool.parallel_for(0, 10, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  pool.parallel_for(5, 100, [&](std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, EffectiveGrainIsThreadCountIndependent) {
  // The chunk grid is a pure function of (n, grain) — never the pool width.
  EXPECT_EQ(ThreadPool::effective_grain(1000, 10), 10u);
  EXPECT_EQ(ThreadPool::effective_grain(1000, 0),
            (1000 + ThreadPool::kDefaultChunks - 1) / ThreadPool::kDefaultChunks);
  EXPECT_EQ(ThreadPool::effective_grain(3, 0), 1u);
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(1000, 10,
                          [&](std::size_t begin, std::size_t) {
                            if (begin >= 500) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
  }
}

TEST(ThreadPool, ParallelReduceIsBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 100'000;
  std::vector<double> xs(n);
  Rng rng(42);
  for (double& x : xs) x = rng.uniform(-1.0, 1.0);

  auto sum_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce(
        n, 0, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += xs[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(8));
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, 1, [&](std::size_t, std::size_t) {
    pool.parallel_for(16, 1, [&](std::size_t begin, std::size_t end) {
      inner_total.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

std::vector<std::vector<double>> synthetic_samples(std::size_t n,
                                                   std::size_t d,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> xs(n, std::vector<double>(d));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      // Two offset clusters so a small GMM has real structure to find.
      xs[i][j] = rng.normal() + (i % 2 == 0 ? 0.0 : 4.0);
    }
  }
  return xs;
}

TEST(ParallelDeterminism, EigenmemoryFitBitIdentical) {
  GlobalThreadsGuard guard;
  // Covariance path (N >= L) and Gram path (N < L).
  for (const bool gram : {false, true}) {
    const auto data = gram ? synthetic_samples(12, 40, 7)
                           : synthetic_samples(60, 16, 7);
    Eigenmemory::Options opts;
    opts.components = 5;
    std::vector<Eigenmemory> fits;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      set_global_threads(threads);
      fits.push_back(Eigenmemory::fit(data, opts));
    }
    for (std::size_t f = 1; f < fits.size(); ++f) {
      EXPECT_EQ(fits[0].mean(), fits[f].mean()) << "gram=" << gram;
      EXPECT_EQ(fits[0].eigenvalues(), fits[f].eigenvalues());
      const auto b0 = fits[0].basis().data();
      const auto bf = fits[f].basis().data();
      ASSERT_EQ(b0.size(), bf.size());
      for (std::size_t i = 0; i < b0.size(); ++i) {
        ASSERT_EQ(b0[i], bf[i]) << "basis element " << i << " gram=" << gram;
      }
    }
  }
}

TEST(ParallelDeterminism, GmmFitBitIdentical) {
  GlobalThreadsGuard guard;
  const auto data = synthetic_samples(80, 4, 11);
  Gmm::Options opts;
  opts.components = 2;
  opts.restarts = 3;
  opts.max_iterations = 50;
  std::vector<Gmm> fits;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    set_global_threads(threads);
    fits.push_back(Gmm::fit(data, opts));
  }
  for (std::size_t f = 1; f < fits.size(); ++f) {
    ASSERT_EQ(fits[0].component_count(), fits[f].component_count());
    for (std::size_t j = 0; j < fits[0].component_count(); ++j) {
      const auto& a = fits[0].components()[j];
      const auto& b = fits[f].components()[j];
      EXPECT_EQ(a.weight, b.weight) << "component " << j;
      EXPECT_EQ(a.mean, b.mean) << "component " << j;
      const auto ca = a.covariance.data();
      const auto cb = b.covariance.data();
      ASSERT_EQ(ca.size(), cb.size());
      for (std::size_t i = 0; i < ca.size(); ++i) {
        ASSERT_EQ(ca[i], cb[i]) << "cov element " << i;
      }
    }
  }
}

TEST(ParallelDeterminism, KmeansPlusPlusInitBitIdentical) {
  GlobalThreadsGuard guard;
  const auto data = synthetic_samples(100, 6, 13);
  std::vector<std::vector<std::vector<double>>> inits;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    set_global_threads(threads);
    Rng rng(99);
    inits.push_back(kmeans_plus_plus_init(data, 4, rng));
  }
  EXPECT_EQ(inits[0], inits[1]);
  EXPECT_EQ(inits[0], inits[2]);
}

TEST(ParallelDeterminism, CollectNormalTraceBitIdentical) {
  GlobalThreadsGuard guard;
  const sim::SystemConfig cfg = pipeline::fast_test_config();
  pipeline::ProfilingPlan plan = pipeline::fast_test_plan();
  plan.runs = 3;
  plan.run_duration = 300 * kMillisecond;

  std::vector<HeatMapTrace> traces;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    set_global_threads(threads);
    traces.push_back(pipeline::collect_normal_trace(cfg, plan));
  }
  for (std::size_t t = 1; t < traces.size(); ++t) {
    ASSERT_EQ(traces[0].size(), traces[t].size());
    for (std::size_t i = 0; i < traces[0].size(); ++i) {
      ASSERT_EQ(traces[0][i].interval_index, traces[t][i].interval_index);
      ASSERT_EQ(traces[0][i].counts(), traces[t][i].counts()) << "map " << i;
    }
  }
}

TEST(ParallelDeterminism, ScenarioFanOutMatchesSerialRuns) {
  GlobalThreadsGuard guard;
  const sim::SystemConfig cfg = pipeline::fast_test_config();
  pipeline::ProfilingPlan plan = pipeline::fast_test_plan();
  plan.runs = 2;
  plan.run_duration = 300 * kMillisecond;

  set_global_threads(2);
  const auto pipe = pipeline::train_pipeline(
      cfg, plan, pipeline::fast_test_detector_options());

  const SimTime duration = 30 * cfg.monitor.interval;
  std::vector<pipeline::ScenarioSpec> specs = {
      {.attack = "", .trigger_time = 0, .duration = duration, .seed = 501},
      {.attack = "", .trigger_time = 0, .duration = duration, .seed = 502},
      {.attack = "", .trigger_time = 0, .duration = duration, .seed = 503},
  };
  const auto batch = pipeline::run_scenarios(cfg, specs, pipe.detector.get());
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const auto serial = pipeline::run_scenario(
        cfg, nullptr, 0, duration, pipe.detector.get(), specs[s].seed);
    EXPECT_EQ(batch[s].log10_densities(), serial.log10_densities())
        << "scenario " << s;
  }
}

}  // namespace
}  // namespace mhm
