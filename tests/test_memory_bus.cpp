#include "hw/memory_bus.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/trace_recorder.hpp"

namespace mhm::hw {
namespace {

TEST(AccessBurst, TotalAccessesCountsWords) {
  AccessBurst b{.time = 0, .base = 0x1000, .size_bytes = 16, .sweeps = 3};
  EXPECT_EQ(b.total_accesses(), 12u);  // 4 words * 3 sweeps
}

TEST(AccessBurst, PartialWordRoundsUp) {
  AccessBurst b{.time = 0, .base = 0x1000, .size_bytes = 5, .sweeps = 1};
  EXPECT_EQ(b.total_accesses(), 2u);  // 5 bytes -> 2 word fetches
}

TEST(AccessBurst, SingleFetch) {
  AccessBurst b{.time = 0, .base = 0x1000, .size_bytes = 4, .sweeps = 1};
  EXPECT_EQ(b.total_accesses(), 1u);
}

TEST(MemoryBus, DeliversBurstsToObservers) {
  MemoryBus bus;
  TraceRecorder rec1;
  TraceRecorder rec2;
  bus.attach(&rec1);
  bus.attach(&rec2);
  bus.publish_access(10, 0x2000);
  EXPECT_EQ(rec1.bursts().size(), 1u);
  EXPECT_EQ(rec2.bursts().size(), 1u);
  EXPECT_EQ(rec1.bursts()[0].base, 0x2000u);
  EXPECT_EQ(rec1.bursts()[0].time, 10u);
}

TEST(MemoryBus, DetachStopsDelivery) {
  MemoryBus bus;
  TraceRecorder rec;
  bus.attach(&rec);
  bus.publish_access(1, 0x1000);
  bus.detach(&rec);
  bus.publish_access(2, 0x1000);
  EXPECT_EQ(rec.bursts().size(), 1u);
}

TEST(MemoryBus, RejectsDoubleAttach) {
  MemoryBus bus;
  TraceRecorder rec;
  bus.attach(&rec);
  EXPECT_THROW(bus.attach(&rec), LogicError);
}

TEST(MemoryBus, RejectsNullObserver) {
  MemoryBus bus;
  EXPECT_THROW(bus.attach(nullptr), LogicError);
}

TEST(MemoryBus, EnforcesMonotoneTime) {
  MemoryBus bus;
  bus.publish_access(100, 0x1000);
  EXPECT_THROW(bus.publish_access(99, 0x1000), LogicError);
  EXPECT_NO_THROW(bus.publish_access(100, 0x1000));  // equal is allowed
}

TEST(MemoryBus, AdvanceTimeCannotGoBackwards) {
  MemoryBus bus;
  bus.advance_time(50);
  EXPECT_THROW(bus.advance_time(49), LogicError);
}

TEST(MemoryBus, RejectsEmptyBurst) {
  MemoryBus bus;
  EXPECT_THROW(
      bus.publish(AccessBurst{.time = 0, .base = 0, .size_bytes = 0, .sweeps = 1}),
      LogicError);
  EXPECT_THROW(
      bus.publish(AccessBurst{.time = 0, .base = 0, .size_bytes = 4, .sweeps = 0}),
      LogicError);
}

TEST(MemoryBus, TracksStatistics) {
  MemoryBus bus;
  bus.publish(AccessBurst{.time = 0, .base = 0, .size_bytes = 8, .sweeps = 2});
  bus.publish_access(1, 0x100);
  EXPECT_EQ(bus.bursts_published(), 2u);
  EXPECT_EQ(bus.accesses_published(), 5u);  // 2*2 + 1
  EXPECT_EQ(bus.last_time(), 1u);
}

TEST(TraceRecorder, ReplayReproducesStream) {
  MemoryBus original;
  TraceRecorder rec;
  original.attach(&rec);
  original.publish_access(5, 0x1000);
  original.publish(AccessBurst{.time = 7, .base = 0x2000, .size_bytes = 64,
                               .sweeps = 3});

  MemoryBus replay_bus;
  TraceRecorder replay_rec;
  replay_bus.attach(&replay_rec);
  rec.replay(replay_bus, 100);

  ASSERT_EQ(replay_rec.bursts().size(), 2u);
  EXPECT_EQ(replay_rec.bursts()[1].sweeps, 3u);
  EXPECT_EQ(replay_bus.last_time(), 100u);
  EXPECT_EQ(rec.total_accesses(), replay_rec.total_accesses());
}

TEST(TraceRecorder, ClearEmptiesBuffer) {
  MemoryBus bus;
  TraceRecorder rec;
  bus.attach(&rec);
  bus.publish_access(0, 0x1);
  rec.clear();
  EXPECT_TRUE(rec.bursts().empty());
  EXPECT_EQ(rec.total_accesses(), 0u);
}

}  // namespace
}  // namespace mhm::hw
