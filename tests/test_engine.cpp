// Engine-layer tests: interval sources, sessions vs. the façade, the model
// registry, concurrent streams and hot model swaps. The Golden* tests pin
// the exact (bit-level) verdict stream of the fast test pipeline as
// captured before the engine refactor — run_scenario()'s move onto
// SimIntervalSource and the detector façade's move onto ModelSnapshot +
// score_snapshot() must not change a single bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "attacks/attacks.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/model_io.hpp"
#include "core/snapshot.hpp"
#include "core/trace_io.hpp"
#include "engine/engine.hpp"
#include "engine/sim_source.hpp"
#include "engine/source.hpp"
#include "obs/export.hpp"
#include "pipeline/experiment.hpp"

namespace mhm {
namespace {

HeatMapTrace synthetic_maps(std::size_t n, std::uint64_t seed,
                            std::size_t cells = 16) {
  Rng rng(seed);
  HeatMapTrace maps;
  for (std::uint64_t i = 0; i < n; ++i) {
    HeatMap m(cells);
    for (std::size_t c = 0; c < cells; ++c) {
      m.increment(c, rng.poisson(40.0 + 12.0 * static_cast<double>(c % 4)));
    }
    m.interval_index = i;
    maps.push_back(std::move(m));
  }
  return maps;
}

/// Bit-level verdict comparison with hexfloat diagnostics: a one-ulp drift
/// in the batch path must fail loudly with the exact bits on both sides.
std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return std::string(buf);
}

::testing::AssertionResult verdict_bits_match(const Verdict& got,
                                              const Verdict& want) {
  if (std::memcmp(&got.log10_density, &want.log10_density, 8) != 0) {
    return ::testing::AssertionFailure()
           << "log10_density " << hexf(got.log10_density) << " != "
           << hexf(want.log10_density);
  }
  if (std::memcmp(&got.spe, &want.spe, 8) != 0) {
    return ::testing::AssertionFailure()
           << "spe " << hexf(got.spe) << " != " << hexf(want.spe);
  }
  if (got.nearest_pattern != want.nearest_pattern) {
    return ::testing::AssertionFailure()
           << "nearest_pattern " << got.nearest_pattern << " != "
           << want.nearest_pattern;
  }
  if (got.model_version != want.model_version) {
    return ::testing::AssertionFailure() << "model_version "
                                         << got.model_version << " != "
                                         << want.model_version;
  }
  if (got.anomalous != want.anomalous) {
    return ::testing::AssertionFailure()
           << "anomalous " << got.anomalous << " != " << want.anomalous;
  }
  return ::testing::AssertionSuccess();
}

AnomalyDetector::Options tiny_options(std::size_t pca_components = 4) {
  AnomalyDetector::Options opts;
  opts.pca.components = pca_components;
  opts.gmm.components = 2;
  opts.gmm.restarts = 2;
  return opts;
}

// Must run before anything in this binary constructs a detector with the
// default 10-phase journal: the phase metric handles are registered under
// the *final* phase count only. The pre-engine detector registered its
// handles in the constructor before train() applied the options override,
// so a 3-phase detector left stale phase-5..9 gauges in the registry.
TEST(StreamObserverHygiene, PhaseHandlesRegisteredOnlyUnderFinalCount) {
  AnomalyDetector::Options opts = tiny_options();
  opts.journal_phases = 3;
  const HeatMapTrace train = synthetic_maps(120, 1);
  const HeatMapTrace valid = synthetic_maps(60, 2);
  const AnomalyDetector detector = AnomalyDetector::train(train, valid, opts);
  (void)detector;

  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("mhm_detector_intervals_by_phase_2"), std::string::npos);
  EXPECT_EQ(text.find("mhm_detector_intervals_by_phase_3"), std::string::npos);
  EXPECT_EQ(text.find("mhm_detector_intervals_by_phase_5"), std::string::npos);
  EXPECT_EQ(text.find("mhm_detector_intervals_by_phase_9"), std::string::npos);
}

TEST(SourceTest, VectorSourceIteratesInOrderAndRewinds) {
  engine::VectorSource source(synthetic_maps(5, 3));
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      auto item = source.next();
      ASSERT_TRUE(item.has_value());
      EXPECT_EQ(item->interval_index, i);
      EXPECT_EQ(item->map.interval_index, i);
    }
    EXPECT_FALSE(source.next().has_value());
    EXPECT_FALSE(source.next().has_value());  // Stays exhausted.
    source.rewind();
  }
}

TEST(SourceTest, TraceReplaySourceRoundTripsThroughFile) {
  RecordedTrace trace;
  trace.config.granularity = 2048;
  trace.config.size = 16 * 2048;
  trace.maps = synthetic_maps(7, 4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mhm_engine_trace.mhmt")
          .string();
  save_trace_file(trace, path);

  engine::TraceReplaySource source = engine::TraceReplaySource::from_file(path);
  EXPECT_EQ(source.size(), 7u);
  EXPECT_EQ(source.config().granularity, trace.config.granularity);
  std::size_t n = 0;
  while (auto item = source.next()) {
    EXPECT_EQ(item->map.counts(), trace.maps[n].counts());
    EXPECT_EQ(item->interval_index, trace.maps[n].interval_index);
    ++n;
  }
  EXPECT_EQ(n, 7u);
  std::filesystem::remove(path);
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("mhm_registry_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static DetectorModel tiny_model(std::size_t pca_components = 4) {
    const HeatMapTrace train = synthetic_maps(120, 11);
    const HeatMapTrace valid = synthetic_maps(60, 12);
    return DetectorModel::from_detector(
        AnomalyDetector::train(train, valid, tiny_options(pca_components)));
  }

  std::string dir_;
};

TEST_F(RegistryTest, SaveAssignsMonotonicVersionsAndLists) {
  ModelRegistry registry(dir_);
  EXPECT_FALSE(registry.latest_version().has_value());
  EXPECT_TRUE(registry.list().empty());
  EXPECT_THROW(registry.load_latest(), SerializationError);

  const DetectorModel model = tiny_model();
  EXPECT_EQ(registry.save(model), 1u);
  EXPECT_EQ(registry.save(model), 2u);
  EXPECT_EQ(registry.save(model), 3u);
  EXPECT_EQ(registry.list(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(registry.latest_version().value(), 3u);

  // A second handle to the same directory continues the sequence.
  ModelRegistry reopened(dir_);
  EXPECT_EQ(reopened.save(model), 4u);

  // Snapshots are stamped with the version they were loaded under.
  EXPECT_EQ(registry.load_snapshot(2)->version, 2u);
  EXPECT_EQ(registry.load_latest_snapshot()->version, 4u);
}

TEST_F(RegistryTest, LoadMissingVersionThrows) {
  ModelRegistry registry(dir_);
  registry.save(tiny_model());
  EXPECT_THROW(registry.load(7), SerializationError);
}

TEST_F(RegistryTest, LoadRejectsPcaGmmDimensionMismatch) {
  ModelRegistry registry(dir_);
  // A poisoned artifact: the eigenmemory of a 4-component model with the
  // GMM of a 3-component one. The file itself is well-formed, so only the
  // cross-section validation can catch it.
  DetectorModel franken = tiny_model(4);
  franken.gmm = tiny_model(3).gmm;
  save_model_file(franken, registry.path_for(1));
  EXPECT_THROW(registry.load(1), SerializationError);
  EXPECT_THROW(registry.load_latest(), SerializationError);
}

TEST_F(RegistryTest, ConstructorRejectsFilePath) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mhm_registry_not_a_dir")
          .string();
  std::filesystem::remove_all(file);
  save_model_file(tiny_model(), file);
  EXPECT_THROW(ModelRegistry{file}, ConfigError);
  std::filesystem::remove(file);
}

/// Shares one trained fast pipeline (and one scored attack run) across the
/// engine tests, mirroring IntegrationTest.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipe_ = new pipeline::TrainedPipeline(pipeline::train_pipeline(
        pipeline::fast_test_config(), pipeline::fast_test_plan(),
        pipeline::fast_test_detector_options()));
    attacks::ShellcodeAttack attack("bitcount");
    attacked_ = new pipeline::ScenarioRun(pipeline::run_scenario(
        pipeline::fast_test_config(), &attack, 1 * kSecond, 2 * kSecond,
        pipe_->detector.get(), 42));
  }
  static void TearDownTestSuite() {
    delete attacked_;
    attacked_ = nullptr;
    delete pipe_;
    pipe_ = nullptr;
  }

  static void expect_same_verdicts(const std::vector<Verdict>& a,
                                   const std::vector<Verdict>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].interval_index, b[i].interval_index);
      EXPECT_EQ(a[i].log10_density, b[i].log10_density);  // Bit-identical.
      EXPECT_EQ(a[i].anomalous, b[i].anomalous);
      EXPECT_EQ(a[i].nearest_pattern, b[i].nearest_pattern);
      EXPECT_EQ(a[i].spe, b[i].spe);
    }
  }

  static pipeline::TrainedPipeline* pipe_;
  static pipeline::ScenarioRun* attacked_;
};

pipeline::TrainedPipeline* EngineTest::pipe_ = nullptr;
pipeline::ScenarioRun* EngineTest::attacked_ = nullptr;

// --- Golden pins: values captured from the pre-engine implementation. ---

TEST_F(EngineTest, GoldenThresholdsMatchPreRefactorCapture) {
  EXPECT_EQ(pipe_->theta_05.log10_value, -0x1.ff2e99ec8882p+4);
  EXPECT_EQ(pipe_->theta_1.log10_value, -0x1.f4dd11fabd412p+4);
}

struct GoldenScenario {
  std::size_t n;
  std::size_t alarms;
  double sum;
  double first;
  double last;
  double mid;
};

void expect_golden(const pipeline::ScenarioRun& run,
                   const GoldenScenario& golden) {
  ASSERT_EQ(run.verdicts.size(), golden.n);
  double sum = 0.0;
  std::size_t alarms = 0;
  for (const auto& v : run.verdicts) {
    sum += v.log10_density;
    alarms += v.anomalous;
  }
  EXPECT_EQ(alarms, golden.alarms);
  EXPECT_EQ(sum, golden.sum);
  EXPECT_EQ(run.verdicts.front().log10_density, golden.first);
  EXPECT_EQ(run.verdicts.back().log10_density, golden.last);
  EXPECT_EQ(run.verdicts[golden.n / 2].log10_density, golden.mid);
}

TEST_F(EngineTest, GoldenVerdictsNormalRun) {
  const pipeline::ScenarioRun run =
      pipeline::run_scenario(pipeline::fast_test_config(), nullptr, 0,
                             2 * kSecond, pipe_->detector.get(), 4242);
  expect_golden(run, {200, 2, -0x1.4440139b0d984p+12, -0x1.7e9dd29a4e649p+4,
                      -0x1.81cd8eb2a297cp+4, -0x1.689a05903e08dp+4});
}

TEST_F(EngineTest, GoldenVerdictsAppAddition) {
  attacks::AppAdditionAttack attack;
  const pipeline::ScenarioRun run = pipeline::run_scenario(
      pipeline::fast_test_config(), &attack, 1 * kSecond, 2 * kSecond,
      pipe_->detector.get(), 77);
  expect_golden(run, {200, 43, -0x1.b07ea298f786p+12, -0x1.7b9ec63f4d2p+4,
                      -0x1.4d019ba40561fp+6, -0x1.167e132922703p+5});
}

TEST_F(EngineTest, GoldenVerdictsShellcode) {
  expect_golden(*attacked_,
                {200, 25, -0x1.dd5a622dbadcep+12, -0x1.7d1bb1542804cp+4,
                 -0x1.967c9d4dd7832p+4, -0x1.ecf050e44ded2p+4});
}

// --- Sources against the live simulator. ---

TEST_F(EngineTest, SimSourceYieldsExactlyTheSystemTrace) {
  const sim::SystemConfig cfg = pipeline::fast_test_config(9);
  HeatMapTrace pulled;
  {
    sim::System system(cfg);
    engine::SimIntervalSource source(system, 500 * kMillisecond);
    while (auto item = source.next()) pulled.push_back(std::move(item->map));
    EXPECT_EQ(source.remaining(), 0u);
  }
  sim::System reference(cfg);
  reference.run_for(500 * kMillisecond);
  const HeatMapTrace& expected = reference.trace();

  ASSERT_EQ(pulled.size(), expected.size());
  ASSERT_FALSE(pulled.empty());
  for (std::size_t i = 0; i < pulled.size(); ++i) {
    EXPECT_EQ(pulled[i].interval_index, expected[i].interval_index);
    EXPECT_EQ(pulled[i].counts(), expected[i].counts());
  }
}

// --- Sessions. ---

TEST_F(EngineTest, SessionMatchesFacadeBitIdentically) {
  const engine::DetectionEngine engine = pipe_->make_engine();
  engine::Session session = engine.new_session();
  engine::VectorSource source(attacked_->maps);
  const std::vector<Verdict> verdicts = session.run(source);
  expect_same_verdicts(verdicts, attacked_->verdicts);
  EXPECT_TRUE(session.transitions().empty());
}

TEST_F(EngineTest, RegistryRoundTripReassemblesBitIdenticalVerdicts) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mhm_registry_roundtrip")
          .string();
  std::filesystem::remove_all(dir);
  ModelRegistry registry(dir);
  registry.save(DetectorModel::from_detector(pipe_->det()));

  const auto snapshot = registry.load_latest_snapshot();
  // The serialized model carries no raw training maps, so the reassembled
  // snapshot has no CellBaseline: journal alarms on this session simply
  // skip the per-cell explanation. Scores are unaffected.
  EXPECT_EQ(snapshot->baseline, nullptr);
  EXPECT_EQ(snapshot->version, 1u);

  const engine::DetectionEngine engine(snapshot);
  engine::Session session = engine.new_session();
  engine::VectorSource source(attacked_->maps);
  const std::vector<Verdict> verdicts = session.run(source);
  expect_same_verdicts(verdicts, attacked_->verdicts);
  for (const auto& v : verdicts) EXPECT_EQ(v.model_version, 1u);

  std::filesystem::remove_all(dir);
}

TEST_F(EngineTest, ConcurrentSessionsBitIdenticalToSerial) {
  const engine::DetectionEngine engine = pipe_->make_engine();
  engine::Session serial = engine.new_session();
  engine::VectorSource serial_source(attacked_->maps);
  const std::vector<Verdict> expected = serial.run(serial_source);

  constexpr std::size_t kStreams = 4;
  std::vector<std::vector<Verdict>> per_stream(kStreams);
  {
    // Sources are single-consumer, so each parallel stream replays its own
    // source over the same recorded trace.
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kStreams; ++t) {
      threads.emplace_back([&, t] {
        engine::Session session = engine.new_session();
        engine::TraceReplaySource source(attacked_->maps);
        per_stream[t] = session.run(source);
      });
    }
    for (auto& th : threads) th.join();
  }
  for (const auto& verdicts : per_stream) {
    expect_same_verdicts(verdicts, expected);
  }
}

// --- Batched SoA scoring: property + golden bit-identity pins. ---

// Property: for every swept batch size, score_snapshot_batch over a
// shuffled composition of pool maps reproduces the serial score_snapshot
// verdicts bit-for-bit — at thread count 1 and with the composition split
// across 4 concurrent scorers (each with its own ScoreBatch + scratch).
TEST_F(EngineTest, PropertyBatchScoringBitIdenticalAcrossSizesAndThreads) {
  const ModelSnapshot& model = *pipe_->det().snapshot();
  std::vector<std::vector<double>> pool;
  pool.reserve(attacked_->maps.size());
  for (const auto& m : attacked_->maps) pool.push_back(m.as_vector());

  // Serial reference, one verdict per pool map (scoring is stateless per
  // interval, so any composition can be checked against this table).
  ScoreScratch serial_scratch;
  std::vector<Verdict> ref;
  ref.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ref.push_back(score_snapshot(model, pool[i],
                                 attacked_->maps[i].interval_index,
                                 serial_scratch));
  }

  Rng rng(0xB175);
  for (const std::size_t bsize : {1u, 2u, 3u, 64u, 1000u}) {
    // Shuffled composition with replacement: exercises repeated maps inside
    // one batch and every ragged-tile width.
    std::vector<std::size_t> comp(bsize);
    for (auto& c : comp) {
      c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    }
    std::shuffle(comp.begin(), comp.end(), rng);

    for (const std::size_t nthreads : {1u, 4u}) {
      std::vector<std::string> failures(nthreads);
      std::vector<std::thread> workers;
      for (std::size_t t = 0; t < nthreads; ++t) {
        workers.emplace_back([&, t] {
          const std::size_t lo = bsize * t / nthreads;
          const std::size_t hi = bsize * (t + 1) / nthreads;
          if (lo == hi) return;
          ScoreBatch batch;
          BatchScoreScratch scratch;
          batch.clear(model.pca.input_dim());
          for (std::size_t x = lo; x < hi; ++x) {
            batch.push(pool[comp[x]], attacked_->maps[comp[x]].interval_index);
          }
          score_snapshot_batch(model, batch, scratch);
          for (std::size_t b = 0; b < batch.size(); ++b) {
            const auto result =
                verdict_bits_match(batch.verdict(b), ref[comp[lo + b]]);
            if (!result) {
              failures[t] = "batch=" + std::to_string(bsize) + " threads=" +
                            std::to_string(nthreads) + " lane=" +
                            std::to_string(lo + b) + ": " + result.message();
              return;
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
    }
  }
}

// Property: analyze_shard over shuffled shard compositions (each session
// handed an arbitrary pool map per round) scatters verdicts bit-identical
// to the serial per-session analyze() stream, at every swept shard size.
TEST_F(EngineTest, PropertyShardCompositionsReproduceSerialVerdicts) {
  const engine::DetectionEngine engine = pipe_->make_engine();
  std::vector<std::vector<double>> rows;
  rows.reserve(attacked_->maps.size());
  for (const auto& m : attacked_->maps) rows.push_back(m.as_vector());

  engine::SessionOptions light;
  light.journal_capacity = 16;
  light.top_cells = 2;

  // Serial reference: one session over the whole trace.
  engine::Session serial = engine.new_session(light);
  std::vector<Verdict> ref;
  ref.reserve(attacked_->maps.size());
  for (const auto& m : attacked_->maps) ref.push_back(serial.analyze(m));

  Rng rng(0x51A2D);
  for (const std::size_t shard_size : {1u, 2u, 3u, 64u, 1000u}) {
    std::vector<engine::Session> sessions;
    sessions.reserve(shard_size);
    std::vector<engine::Session*> ptrs;
    ptrs.reserve(shard_size);
    for (std::size_t s = 0; s < shard_size; ++s) {
      sessions.push_back(engine.new_session(light));
      ptrs.push_back(&sessions.back());
    }

    engine::ShardWorkspace ws;
    std::vector<std::span<const double>> raws(shard_size);
    std::vector<std::uint64_t> idx(shard_size);
    std::vector<std::size_t> comp(shard_size);
    for (int round = 0; round < 2; ++round) {
      for (auto& c : comp) {
        c = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
      }
      std::shuffle(comp.begin(), comp.end(), rng);
      for (std::size_t s = 0; s < shard_size; ++s) {
        raws[s] = rows[comp[s]];
        idx[s] = attacked_->maps[comp[s]].interval_index;
      }
      std::vector<Verdict> got;
      engine.analyze_shard(ptrs, raws, idx, ws, &got);
      ASSERT_EQ(got.size(), shard_size);
      for (std::size_t s = 0; s < shard_size; ++s) {
        EXPECT_TRUE(verdict_bits_match(got[s], ref[comp[s]]))
            << "shard=" << shard_size << " round=" << round << " lane=" << s;
      }
    }
  }
}

// --- Hot model swap. ---

class HotSwapTest : public EngineTest {
 protected:
  void SetUp() override {
    // Per-test-name directory: under `ctest -j` each test runs as its own
    // process, so a shared fixed path races one process's TearDown against
    // another's registry scan.
    dir_ = (std::filesystem::temp_directory_path() /
            ("mhm_registry_swap_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    ModelRegistry registry(dir_);
    registry.save(DetectorModel::from_detector(pipe_->det()));
    // Model B: same cell count, different mixture — trained with one fewer
    // GMM component so its densities differ from model A's.
    AnomalyDetector::Options opts = pipeline::fast_test_detector_options();
    opts.gmm.components = 4;
    const AnomalyDetector b =
        AnomalyDetector::train(pipe_->training, pipe_->validation, opts);
    registry.save(DetectorModel::from_detector(b));
    registry_ = std::make_unique<ModelRegistry>(dir_);
  }
  void TearDown() override {
    registry_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<ModelRegistry> registry_;
};

TEST_F(HotSwapTest, SwapTakesEffectAtNextIntervalBoundary) {
  const auto snap_a = registry_->load_snapshot(1);
  const auto snap_b = registry_->load_snapshot(2);

  // References: whole run under each model (scoring is stateless per
  // interval, so a mid-run swap must match these slices exactly).
  const engine::DetectionEngine engine_a(snap_a);
  const engine::DetectionEngine engine_b(snap_b);
  engine::Session ref_a = engine_a.new_session();
  engine::Session ref_b = engine_b.new_session();
  engine::VectorSource src1(attacked_->maps);
  engine::VectorSource src2(attacked_->maps);
  const std::vector<Verdict> under_a = ref_a.run(src1);
  const std::vector<Verdict> under_b = ref_b.run(src2);
  ASSERT_FALSE(under_a.empty());
  // The models genuinely disagree somewhere (otherwise the test is vacuous).
  bool differ = false;
  for (std::size_t i = 0; i < under_a.size(); ++i) {
    differ |= under_a[i].log10_density != under_b[i].log10_density;
  }
  ASSERT_TRUE(differ);

  engine::DetectionEngine engine(snap_a);
  engine::Session session = engine.new_session();
  EXPECT_EQ(engine.model_version(), 1u);
  const std::size_t half = attacked_->maps.size() / 2;
  std::vector<Verdict> verdicts;
  for (std::size_t i = 0; i < half; ++i) {
    verdicts.push_back(session.analyze(attacked_->maps[i]));
  }
  engine.swap_model(snap_b);
  EXPECT_EQ(engine.model_version(), 2u);
  // No map is dropped: the very next analyze() scores with model B.
  for (std::size_t i = half; i < attacked_->maps.size(); ++i) {
    verdicts.push_back(session.analyze(attacked_->maps[i]));
  }

  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const std::vector<Verdict>& expected = i < half ? under_a : under_b;
    EXPECT_EQ(verdicts[i].model_version, i < half ? 1u : 2u);
    EXPECT_EQ(verdicts[i].log10_density, expected[i].log10_density);
    EXPECT_EQ(verdicts[i].anomalous, expected[i].anomalous);
  }

  ASSERT_EQ(session.transitions().size(), 1u);
  EXPECT_EQ(session.transitions()[0].interval_index,
            attacked_->maps[half].interval_index);
  EXPECT_EQ(session.transitions()[0].from_version, 1u);
  EXPECT_EQ(session.transitions()[0].to_version, 2u);
  EXPECT_EQ(session.model_version(), 2u);
}

TEST_F(HotSwapTest, SwapRejectsNullAndMismatchedSnapshots) {
  engine::DetectionEngine engine(registry_->load_snapshot(1));
  EXPECT_THROW(engine.swap_model(nullptr), ConfigError);

  // A model over a different cell count cannot serve the same streams.
  const HeatMapTrace train = synthetic_maps(120, 21);
  const HeatMapTrace valid = synthetic_maps(60, 22);
  const AnomalyDetector other =
      AnomalyDetector::train(train, valid, tiny_options());
  EXPECT_THROW(engine.swap_model(other.snapshot()), ConfigError);
  EXPECT_EQ(engine.model_version(), 1u);  // Still serving model A.
}

TEST_F(HotSwapTest, ConcurrentSessionsAllPickUpSwapAtBoundary) {
  const auto snap_a = registry_->load_snapshot(1);
  const auto snap_b = registry_->load_snapshot(2);
  const engine::DetectionEngine engine_b(snap_b);
  engine::Session ref_b = engine_b.new_session();
  engine::VectorSource src(attacked_->maps);
  const std::vector<Verdict> under_b = ref_b.run(src);

  engine::DetectionEngine engine(snap_a);
  constexpr std::size_t kStreams = 4;
  const std::size_t half = attacked_->maps.size() / 2;
  // Two rendezvous: all streams finish the first half, then the swap is
  // published, then all streams resume — so every session's pickup boundary
  // is exactly `half`.
  std::barrier sync(kStreams + 1);
  std::vector<std::vector<Verdict>> per_stream(kStreams);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kStreams; ++t) {
    threads.emplace_back([&, t] {
      engine::Session session = engine.new_session();
      for (std::size_t i = 0; i < half; ++i) {
        per_stream[t].push_back(session.analyze(attacked_->maps[i]));
      }
      sync.arrive_and_wait();  // First half done, swap not yet visible.
      sync.arrive_and_wait();  // Swap published.
      for (std::size_t i = half; i < attacked_->maps.size(); ++i) {
        per_stream[t].push_back(session.analyze(attacked_->maps[i]));
      }
      EXPECT_EQ(session.transitions().size(), 1u);
    });
  }
  sync.arrive_and_wait();
  engine.swap_model(snap_b);
  sync.arrive_and_wait();
  for (auto& th : threads) th.join();

  for (const auto& verdicts : per_stream) {
    ASSERT_EQ(verdicts.size(), attacked_->maps.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].model_version, i < half ? 1u : 2u);
      if (i >= half) {
        EXPECT_EQ(verdicts[i].log10_density, under_b[i].log10_density);
      }
    }
  }
}

// The shard batch path under a barrier-synchronized mid-stream swap: worker
// threads pump disjoint session groups through analyze_shard, rendezvous at
// the halfway boundary while the swap is published, and resume — every
// session's verdict stream must match the per-model serial references
// bit-for-bit, with the version stamp flipping exactly at the boundary.
// Runs at thread counts 1 and 4 (the 4-thread leg has concurrent
// score_snapshot_batch calls against one shared snapshot).
TEST_F(HotSwapTest, ShardBatchesPickUpBarrierSynchronizedSwapBitIdentically) {
  const auto snap_a = registry_->load_snapshot(1);
  const auto snap_b = registry_->load_snapshot(2);

  // Per-model serial references over the full trace.
  const engine::DetectionEngine engine_a(snap_a);
  const engine::DetectionEngine engine_b(snap_b);
  engine::Session ref_a = engine_a.new_session();
  engine::Session ref_b = engine_b.new_session();
  engine::VectorSource src1(attacked_->maps);
  engine::VectorSource src2(attacked_->maps);
  const std::vector<Verdict> under_a = ref_a.run(src1);
  const std::vector<Verdict> under_b = ref_b.run(src2);

  std::vector<std::vector<double>> rows;
  rows.reserve(attacked_->maps.size());
  for (const auto& m : attacked_->maps) rows.push_back(m.as_vector());
  const std::size_t half = rows.size() / 2;

  for (const std::size_t nthreads : {1u, 4u}) {
    engine::DetectionEngine engine(snap_a);
    constexpr std::size_t kSessions = 8;
    std::vector<engine::Session> sessions;
    sessions.reserve(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      sessions.push_back(engine.new_session());
    }
    std::vector<std::vector<Verdict>> per_session(kSessions);

    std::barrier sync(static_cast<std::ptrdiff_t>(nthreads) + 1);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        const std::size_t lo = kSessions * t / nthreads;
        const std::size_t hi = kSessions * (t + 1) / nthreads;
        std::vector<engine::Session*> group;
        for (std::size_t s = lo; s < hi; ++s) group.push_back(&sessions[s]);
        engine::ShardWorkspace ws;
        std::vector<std::span<const double>> raws(group.size());
        std::vector<std::uint64_t> idx(group.size());
        std::vector<Verdict> got;
        const auto pump = [&](std::size_t r0, std::size_t r1) {
          for (std::size_t r = r0; r < r1; ++r) {
            for (std::size_t g = 0; g < group.size(); ++g) {
              raws[g] = rows[r];
              idx[g] = attacked_->maps[r].interval_index;
            }
            got.clear();
            engine.analyze_shard(group, raws, idx, ws, &got);
            for (std::size_t g = 0; g < group.size(); ++g) {
              per_session[lo + g].push_back(got[g]);
            }
          }
        };
        pump(0, half);
        sync.arrive_and_wait();  // First half scored, swap not yet visible.
        sync.arrive_and_wait();  // Swap published.
        pump(half, rows.size());
      });
    }
    sync.arrive_and_wait();
    engine.swap_model(snap_b);
    sync.arrive_and_wait();
    for (auto& th : threads) th.join();

    for (std::size_t s = 0; s < kSessions; ++s) {
      ASSERT_EQ(per_session[s].size(), rows.size());
      for (std::size_t i = 0; i < per_session[s].size(); ++i) {
        const Verdict& want = i < half ? under_a[i] : under_b[i];
        EXPECT_TRUE(verdict_bits_match(per_session[s][i], want))
            << "threads=" << nthreads << " session=" << s << " interval="
            << i;
      }
      EXPECT_EQ(sessions[s].transitions().size(), 1u);
    }
  }
}

}  // namespace
}  // namespace mhm
