#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/rng.hpp"

namespace mhm {
namespace {

RecordedTrace make_trace(std::size_t maps, std::uint64_t seed) {
  RecordedTrace trace;
  trace.config.base = 0xC0008000;
  trace.config.size = 64 * 1024;
  trace.config.granularity = 4096;
  trace.config.interval = 10 * kMillisecond;
  Rng rng(seed);
  for (std::size_t m = 0; m < maps; ++m) {
    HeatMap map(trace.config.cell_count());
    map.interval_index = m;
    map.interval_start = m * trace.config.interval;
    for (std::size_t c = 0; c < map.cell_count(); ++c) {
      map.increment(c, rng.poisson(30.0));
    }
    trace.maps.push_back(std::move(map));
  }
  return trace;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const RecordedTrace original = make_trace(25, 1);
  std::stringstream buffer;
  save_trace(original, buffer);
  const RecordedTrace loaded = load_trace(buffer);

  EXPECT_EQ(loaded.config.base, original.config.base);
  EXPECT_EQ(loaded.config.size, original.config.size);
  EXPECT_EQ(loaded.config.granularity, original.config.granularity);
  EXPECT_EQ(loaded.config.interval, original.config.interval);
  ASSERT_EQ(loaded.maps.size(), original.maps.size());
  for (std::size_t m = 0; m < loaded.maps.size(); ++m) {
    EXPECT_EQ(loaded.maps[m].interval_index, original.maps[m].interval_index);
    EXPECT_EQ(loaded.maps[m].interval_start, original.maps[m].interval_start);
    EXPECT_EQ(loaded.maps[m].counts(), original.maps[m].counts()) << m;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  RecordedTrace trace = make_trace(0, 2);
  std::stringstream buffer;
  save_trace(trace, buffer);
  const RecordedTrace loaded = load_trace(buffer);
  EXPECT_TRUE(loaded.maps.empty());
  EXPECT_EQ(loaded.config.granularity, 4096u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mhm_trace_test.bin").string();
  const RecordedTrace original = make_trace(10, 3);
  save_trace_file(original, path);
  const RecordedTrace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.maps.size(), 10u);
  EXPECT_EQ(loaded.maps[5].counts(), original.maps[5].counts());
  std::filesystem::remove(path);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "XXXXjunkjunkjunk";
  EXPECT_THROW(load_trace(buffer), SerializationError);
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream buffer;
  save_trace(make_trace(3, 4), buffer);
  std::string bytes = buffer.str();
  bytes[4] = 0x42;
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_trace(corrupted), SerializationError);
}

TEST(TraceIo, RejectsTruncation) {
  std::stringstream buffer;
  save_trace(make_trace(5, 5), buffer);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 7));
  EXPECT_THROW(load_trace(truncated), SerializationError);
}

TEST(TraceIo, RejectsInconsistentMapSize) {
  RecordedTrace trace = make_trace(2, 6);
  trace.maps.push_back(HeatMap(3));  // wrong cell count for the config
  std::stringstream buffer;
  EXPECT_THROW(save_trace(trace, buffer), SerializationError);
}

TEST(TraceIo, RejectsInvalidStoredConfig) {
  std::stringstream buffer;
  save_trace(make_trace(1, 7), buffer);
  std::string bytes = buffer.str();
  // Zero out the granularity field (offset: 4 magic + 4 version + 16 = 24).
  for (int i = 0; i < 8; ++i) bytes[24 + i] = 0;
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_trace(corrupted), SerializationError);
}

TEST(TraceIo, MissingFileThrowsConfigError) {
  EXPECT_THROW(load_trace_file("/nonexistent_zzz/trace.bin"), ConfigError);
  EXPECT_THROW(save_trace_file(make_trace(1, 8), "/nonexistent_zzz/t.bin"),
               ConfigError);
}

TEST(TraceIo, LoadedTraceTrainsIdenticalDetector) {
  // The point of trace persistence: training from a reloaded trace must
  // produce bit-identical results to training from the live trace.
  const RecordedTrace original = make_trace(120, 9);
  std::stringstream buffer;
  save_trace(original, buffer);
  const RecordedTrace loaded = load_trace(buffer);

  AnomalyDetector::Options opts;
  opts.pca.components = 4;
  opts.gmm.components = 2;
  opts.gmm.restarts = 2;
  const HeatMapTrace valid(original.maps.begin() + 60, original.maps.end());
  const HeatMapTrace valid2(loaded.maps.begin() + 60, loaded.maps.end());
  const auto det_a = AnomalyDetector::train(original.maps, valid, opts);
  const auto det_b = AnomalyDetector::train(loaded.maps, valid2, opts);
  EXPECT_DOUBLE_EQ(det_a.score(original.maps[0].as_vector()),
                   det_b.score(loaded.maps[0].as_vector()));
}

}  // namespace
}  // namespace mhm
