// Conservation and consistency properties of the Memometer across
// configurations: the same access stream, observed at different
// granularities or interval lengths, must aggregate to consistent totals.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hw/memometer.hpp"
#include "hw/trace_recorder.hpp"

namespace mhm::hw {
namespace {

/// A reusable random burst stream confined near a monitored region.
std::vector<AccessBurst> random_stream(std::uint64_t seed, std::size_t n,
                                       Address region_base,
                                       std::uint64_t region_size) {
  Rng rng(seed);
  std::vector<AccessBurst> bursts;
  SimTime t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<SimTime>(rng.uniform_int(0, 200 * kMicrosecond));
    AccessBurst b;
    b.time = t;
    // Mostly inside the region, sometimes straddling or outside.
    const std::int64_t lo = static_cast<std::int64_t>(region_base) - 4096;
    const std::int64_t hi =
        static_cast<std::int64_t>(region_base + region_size) + 4096;
    b.base = static_cast<Address>(rng.uniform_int(lo, hi)) & ~3ull;
    b.size_bytes = static_cast<std::uint64_t>(rng.uniform_int(4, 4096));
    b.sweeps = static_cast<std::uint64_t>(rng.uniform_int(1, 4));
    bursts.push_back(b);
  }
  return bursts;
}

MhmConfig base_config() {
  MhmConfig cfg;
  cfg.base = 0x40000;
  cfg.size = 256 * 1024;
  cfg.granularity = 1024;
  cfg.interval = 10 * kMillisecond;
  return cfg;
}

class MemometerStreamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemometerStreamTest, TotalCountsIndependentOfGranularity) {
  // Conservation: per-interval totals must not depend on the cell size —
  // granularity only redistributes counts among cells.
  const auto stream = random_stream(GetParam(), 400, 0x40000, 256 * 1024);
  std::vector<std::uint64_t> totals_per_granularity;
  for (std::uint64_t granularity : {512u, 1024u, 4096u, 32768u}) {
    MhmConfig cfg = base_config();
    cfg.granularity = granularity;
    std::uint64_t total = 0;
    Memometer meter(cfg, 0, [&](const HeatMap& m) {
      total += m.total_accesses();
    });
    MemoryBus bus;
    bus.attach(&meter);
    for (const auto& b : stream) bus.publish(b);
    meter.finish(stream.back().time + 1, /*deliver_partial=*/true);
    totals_per_granularity.push_back(total);
  }
  for (std::size_t i = 1; i < totals_per_granularity.size(); ++i) {
    EXPECT_EQ(totals_per_granularity[i], totals_per_granularity[0])
        << "granularity index " << i;
  }
}

TEST_P(MemometerStreamTest, TotalCountsIndependentOfIntervalLength) {
  // Partitioning time differently must conserve the grand total.
  const auto stream = random_stream(GetParam() + 50, 400, 0x40000, 256 * 1024);
  std::vector<std::uint64_t> totals;
  for (SimTime interval : {1 * kMillisecond, 10 * kMillisecond,
                           100 * kMillisecond}) {
    MhmConfig cfg = base_config();
    cfg.interval = interval;
    std::uint64_t total = 0;
    Memometer meter(cfg, 0, [&](const HeatMap& m) {
      total += m.total_accesses();
    });
    MemoryBus bus;
    bus.attach(&meter);
    for (const auto& b : stream) bus.publish(b);
    meter.finish(stream.back().time + 1, /*deliver_partial=*/true);
    totals.push_back(total);
  }
  EXPECT_EQ(totals[0], totals[1]);
  EXPECT_EQ(totals[1], totals[2]);
}

TEST_P(MemometerStreamTest, CoarseCellsAreSumsOfFineCells) {
  // Refinement property: a δ=4096 cell's count equals the sum of the four
  // δ=1024 cells covering the same range, interval by interval.
  const auto stream = random_stream(GetParam() + 99, 300, 0x40000, 256 * 1024);

  auto collect = [&](std::uint64_t granularity) {
    MhmConfig cfg = base_config();
    cfg.granularity = granularity;
    std::vector<HeatMap> maps;
    Memometer meter(cfg, 0, [&](const HeatMap& m) { maps.push_back(m); });
    MemoryBus bus;
    bus.attach(&meter);
    for (const auto& b : stream) bus.publish(b);
    meter.finish(stream.back().time + 1, /*deliver_partial=*/true);
    return maps;
  };
  const auto fine = collect(1024);
  const auto coarse = collect(4096);
  ASSERT_EQ(fine.size(), coarse.size());
  for (std::size_t m = 0; m < fine.size(); ++m) {
    for (std::size_t c = 0; c < coarse[m].cell_count(); ++c) {
      std::uint64_t sum = 0;
      for (std::size_t f = 4 * c; f < 4 * c + 4; ++f) sum += fine[m][f];
      ASSERT_EQ(static_cast<std::uint64_t>(coarse[m][c]), sum)
          << "map " << m << " coarse cell " << c;
    }
  }
}

TEST_P(MemometerStreamTest, CountedPlusFilteredEqualsPublished) {
  const auto stream = random_stream(GetParam() + 123, 300, 0x40000,
                                    256 * 1024);
  MhmConfig cfg = base_config();
  Memometer meter(cfg, 0, nullptr);
  MemoryBus bus;
  bus.attach(&meter);
  for (const auto& b : stream) bus.publish(b);
  EXPECT_EQ(meter.accesses_counted() + meter.accesses_filtered_out(),
            bus.accesses_published());
}

TEST_P(MemometerStreamTest, ReplayThroughRecorderIsIdentical) {
  // Capture the stream, replay it into a second Memometer: bit-identical
  // heat maps (the record/replay feature contract).
  const auto stream = random_stream(GetParam() + 321, 250, 0x40000,
                                    256 * 1024);
  const MhmConfig cfg = base_config();

  std::vector<HeatMap> live_maps;
  TraceRecorder recorder;
  {
    Memometer meter(cfg, 0, [&](const HeatMap& m) { live_maps.push_back(m); });
    MemoryBus bus;
    bus.attach(&meter);
    bus.attach(&recorder);
    for (const auto& b : stream) bus.publish(b);
    meter.finish(stream.back().time + 1, true);
  }
  std::vector<HeatMap> replay_maps;
  {
    Memometer meter(cfg, 0, [&](const HeatMap& m) { replay_maps.push_back(m); });
    MemoryBus bus;
    bus.attach(&meter);
    recorder.replay(bus, stream.back().time);
    meter.finish(stream.back().time + 1, true);
  }
  ASSERT_EQ(live_maps.size(), replay_maps.size());
  for (std::size_t m = 0; m < live_maps.size(); ++m) {
    EXPECT_EQ(live_maps[m].counts(), replay_maps[m].counts()) << "map " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemometerStreamTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mhm::hw
