#include "attacks/attacks.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mhm::attacks {
namespace {

sim::SystemConfig test_config(std::uint64_t seed = 1) {
  sim::SystemConfig cfg = sim::SystemConfig::paper_default(seed);
  cfg.monitor.granularity = 8 * 1024;
  return cfg;
}

TEST(MakeScenario, BuildsAllKnownScenarios) {
  EXPECT_EQ(make_scenario("app_addition")->name(), "app_addition");
  EXPECT_EQ(make_scenario("shellcode")->name(), "shellcode");
  EXPECT_EQ(make_scenario("rootkit")->name(), "rootkit");
  EXPECT_THROW(make_scenario("unknown"), ConfigError);
}

TEST(AttackScenario, TriggerIntervalArithmetic) {
  EXPECT_EQ(AttackScenario::trigger_interval(2500 * kMillisecond,
                                             10 * kMillisecond),
            250u);
  EXPECT_EQ(AttackScenario::trigger_interval(0, 10 * kMillisecond), 0u);
}

TEST(AppAdditionAttack, LaunchesTaskAtTrigger) {
  sim::System system(test_config());
  AppAdditionAttack attack;
  attack.arm(system, 100 * kMillisecond);
  system.run_for(90 * kMillisecond);
  EXPECT_THROW(system.scheduler().task("qsort"), ConfigError);
  system.run_for(210 * kMillisecond);
  EXPECT_GT(system.scheduler().task("qsort").jobs_completed, 3u);
}

TEST(AppAdditionAttack, OptionalExitRemovesTask) {
  sim::System system(test_config());
  AppAdditionAttack attack(sim::qsort_task_spec(),
                           /*exit_after=*/150 * kMillisecond);
  attack.arm(system, 100 * kMillisecond);
  system.run_for(400 * kMillisecond);
  EXPECT_FALSE(system.scheduler().task("qsort").active);
  const auto jobs = system.scheduler().task("qsort").jobs_completed;
  EXPECT_GT(jobs, 0u);
  EXPECT_LT(jobs, 7u);  // only ran for ~150 ms at a 30 ms period
}

TEST(AppAdditionAttack, LaunchEmitsProcessCreationBurst) {
  // The fork+exec path makes the launch interval's kernel traffic spike
  // compared with the immediately preceding interval.
  sim::System system(test_config(3));
  AppAdditionAttack attack;
  attack.arm(system, 100 * kMillisecond);
  system.run_for(300 * kMillisecond);
  const auto& trace = system.trace();
  // Compare against the same hyperperiod phase (interval 0): the launch
  // interval carries the fork+exec burst on top of the phase's baseline.
  const std::uint64_t same_phase_baseline = trace[0].total_accesses();
  const std::uint64_t at_launch = trace[10].total_accesses();
  EXPECT_GT(at_launch, same_phase_baseline + same_phase_baseline / 10);
}

TEST(ShellcodeAttack, KillsVictimAndSpawnsShell) {
  sim::System system(test_config());
  ShellcodeAttack attack("bitcount");
  attack.arm(system, 100 * kMillisecond);
  system.run_for(500 * kMillisecond);
  EXPECT_FALSE(system.scheduler().task("bitcount").active);
  EXPECT_TRUE(system.scheduler().task("sh").active);
  EXPECT_GT(system.scheduler().task("sh").jobs_completed, 0u);
}

TEST(ShellcodeAttack, WithoutShellOnlyKillsHost) {
  sim::System system(test_config());
  ShellcodeAttack attack("bitcount", /*spawn_shell=*/false);
  attack.arm(system, 100 * kMillisecond);
  system.run_for(400 * kMillisecond);
  EXPECT_FALSE(system.scheduler().task("bitcount").active);
  EXPECT_THROW(system.scheduler().task("sh"), ConfigError);
}

TEST(ShellcodeAttack, VictimRunsNormallyBeforeTrigger) {
  sim::System system(test_config());
  ShellcodeAttack attack("bitcount");
  attack.arm(system, 200 * kMillisecond);
  system.run_for(190 * kMillisecond);
  EXPECT_TRUE(system.scheduler().task("bitcount").active);
  EXPECT_GE(system.scheduler().task("bitcount").jobs_completed, 8u);
}

TEST(RootkitAttack, LoadsModuleAndAddsLatency) {
  sim::System system(test_config(5));
  RootkitAttack attack(40 * kMicrosecond);
  attack.arm(system, 100 * kMillisecond);
  system.run_for(300 * kMillisecond);
  // All tasks keep running (stealthy attack).
  for (const char* name : {"FFT", "bitcount", "basicmath", "sha"}) {
    EXPECT_TRUE(system.scheduler().task(name).active) << name;
  }
}

TEST(RootkitAttack, LoadIntervalShowsTrafficSpike) {
  // Figure 9: "The moment when the rootkit is being loaded is
  // distinguishable"; afterwards volume returns to normal.
  sim::System system(test_config(6));
  RootkitAttack attack;
  attack.arm(system, 100 * kMillisecond);
  system.run_for(600 * kMillisecond);
  const auto& trace = system.trace();

  // Volumes legitimately vary across the 10-interval hyperperiod, so
  // compare interval 10 (which absorbs the load burst) only against
  // intervals at the same phase.
  std::uint64_t max_same_phase = 0;
  for (std::size_t i : {0u, 20u, 30u, 40u, 50u}) {
    max_same_phase = std::max(max_same_phase, trace[i].total_accesses());
  }
  EXPECT_GT(trace[10].total_accesses(), max_same_phase);

  // Post-load, same-phase volume settles back near normal (stealth phase).
  const std::uint64_t spike = trace[10].total_accesses();
  for (std::size_t i : {20u, 30u, 40u, 50u}) {
    EXPECT_LT(trace[i].total_accesses(), spike) << "interval " << i;
  }
}

TEST(RootkitAttack, HijackShiftsShaTiming) {
  // The hijack delay on read() stretches sha's jobs. Its per-job busy time
  // must grow, visible as a later completion count at a fixed horizon.
  auto sha_jobs = [](bool with_rootkit) {
    sim::System system(test_config(7));
    if (with_rootkit) {
      RootkitAttack attack(200 * kMicrosecond);
      attack.arm(system, 50 * kMillisecond);
    }
    system.run_for(1 * kSecond);
    return system.scheduler().task("sha").jobs_completed;
  };
  // sha still completes (the system tolerates the overhead)...
  EXPECT_GT(sha_jobs(true), 5u);
  // ...and the run with the rootkit burns more CPU on sha reads. Compare
  // busy time via deadline pressure: with a large enough delay the jobs
  // finish later. (Indirect but deterministic given fixed seeds.)
  sim::System clean(test_config(7));
  sim::System dirty(test_config(7));
  RootkitAttack attack(200 * kMicrosecond);
  attack.arm(dirty, 50 * kMillisecond);
  clean.run_for(1 * kSecond);
  dirty.run_for(1 * kSecond);
  EXPECT_GT(dirty.scheduler().stats().busy_time,
            clean.scheduler().stats().busy_time);
}

TEST(RootkitAttack, StealthPhaseKeepsMapDifferencesSubtle) {
  // After the load, per-interval totals should stay in the normal band --
  // the attack is invisible to the volume baseline (Figure 9's point).
  sim::System clean(test_config(8));
  sim::System dirty(test_config(8));
  RootkitAttack attack(40 * kMicrosecond);
  attack.arm(dirty, 100 * kMillisecond);
  clean.run_for(600 * kMillisecond);
  dirty.run_for(600 * kMillisecond);

  double clean_mean = 0.0;
  double dirty_mean = 0.0;
  for (std::size_t i = 30; i < 60; ++i) {
    clean_mean += static_cast<double>(clean.trace()[i].total_accesses());
    dirty_mean += static_cast<double>(dirty.trace()[i].total_accesses());
  }
  clean_mean /= 30.0;
  dirty_mean /= 30.0;
  EXPECT_LT(std::abs(dirty_mean - clean_mean) / clean_mean, 0.15);
}

}  // namespace
}  // namespace mhm::attacks
