#include "sim/kernel_services.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "hw/trace_recorder.hpp"

namespace mhm::sim {
namespace {

class KernelServicesTest : public ::testing::Test {
 protected:
  KernelImage image_;
  ServiceCatalog catalog_{image_};
  hw::MemoryBus bus_;
  hw::TraceRecorder recorder_;
  Rng rng_{99};

  void SetUp() override { bus_.attach(&recorder_); }
};

TEST_F(KernelServicesTest, DefaultCatalogHasExpectedServices) {
  for (const char* name :
       {"sys_read", "sys_write", "sys_open", "sys_close", "sys_gettimeofday",
        "sys_nanosleep", "sys_mmap", "sys_brk", "sys_ipc", "do_fork",
        "do_execve", "do_exit", "sys_kill", "sys_waitpid", "sys_personality",
        "sys_mprotect", "load_module", "page_fault", "sched_tick",
        "context_switch", "irq_dispatch", "idle_loop", "kworker"}) {
    EXPECT_TRUE(catalog_.contains(name)) << name;
  }
  EXPECT_FALSE(catalog_.contains("sys_does_not_exist"));
  EXPECT_THROW(catalog_.id("sys_does_not_exist"), ConfigError);
}

TEST_F(KernelServicesTest, EveryStepReferencesValidFunction) {
  for (std::size_t s = 0; s < catalog_.size(); ++s) {
    for (const auto& step : catalog_.service(s).steps) {
      EXPECT_LT(step.function, image_.functions().size());
      EXPECT_GT(step.mean_sweeps, 0.0);
    }
  }
}

TEST_F(KernelServicesTest, InvokeEmitsOneBurstPerStep) {
  const ServiceId sid = catalog_.id("sys_read");
  (void)catalog_.invoke(sid, 1000, bus_, rng_);
  EXPECT_EQ(recorder_.bursts().size(), catalog_.service(sid).steps.size());
  for (const auto& b : recorder_.bursts()) {
    EXPECT_EQ(b.time, 1000u);
    EXPECT_GE(b.sweeps, 1u);
  }
}

TEST_F(KernelServicesTest, InvokedBurstsLieInsideKernelText) {
  (void)catalog_.invoke(catalog_.id("do_execve"), 0, bus_, rng_);
  for (const auto& b : recorder_.bursts()) {
    EXPECT_GE(b.base, image_.base());
    EXPECT_LE(b.base + b.size_bytes, image_.text_end());
  }
}

TEST_F(KernelServicesTest, InvokeReturnsJitteredDuration) {
  const ServiceId sid = catalog_.id("sys_read");
  const SimTime mean = catalog_.service(sid).mean_duration;
  RunningStats durations;
  for (int i = 0; i < 500; ++i) {
    durations.add(static_cast<double>(catalog_.invoke(sid, i, bus_, rng_)));
  }
  EXPECT_NEAR(durations.mean(), static_cast<double>(mean),
              0.05 * static_cast<double>(mean));
  EXPECT_GT(durations.stddev(), 0.0);  // jitter present
}

TEST_F(KernelServicesTest, ExtraLatencyAddsToDuration) {
  const ServiceId sid = catalog_.id("sys_read");
  const SimTime plain = catalog_.invoke(sid, 0, bus_, rng_);
  const SimTime extra = 500 * kMicrosecond;
  const SimTime with = catalog_.invoke(sid, 1, bus_, rng_, extra);
  EXPECT_GT(with, plain);
  EXPECT_GE(with, extra);
}

TEST_F(KernelServicesTest, ExtraLatencyEmitsNoExtraFetches) {
  // The rootkit detour runs outside the monitored region: the same number
  // of monitored bursts must be emitted with and without the latency.
  const ServiceId sid = catalog_.id("sys_read");
  (void)catalog_.invoke(sid, 0, bus_, rng_);
  const std::size_t plain_bursts = recorder_.bursts().size();
  recorder_.clear();
  (void)catalog_.invoke(sid, 1, bus_, rng_, 500 * kMicrosecond);
  EXPECT_EQ(recorder_.bursts().size(), plain_bursts);
}

TEST_F(KernelServicesTest, ExpectedAccessesApproximatesEmission) {
  const ServiceId sid = catalog_.id("load_module");
  const double expected = catalog_.service(sid).expected_accesses(image_);
  RunningStats emitted;
  for (int i = 0; i < 300; ++i) {
    recorder_.clear();
    (void)catalog_.invoke(sid, i, bus_, rng_);
    emitted.add(static_cast<double>(recorder_.total_accesses()));
  }
  EXPECT_NEAR(emitted.mean(), expected, 0.1 * expected);
}

TEST_F(KernelServicesTest, ServicesTouchTheirSubsystems) {
  // sys_read must touch fs; load_module must touch the module loader.
  auto touches = [&](const char* service, const char* subsystem) {
    const auto sub_idx = image_.subsystem_index(subsystem);
    for (const auto& step : catalog_.service(catalog_.id(service)).steps) {
      if (image_.function(step.function).subsystem == sub_idx) return true;
    }
    return false;
  };
  EXPECT_TRUE(touches("sys_read", "fs"));
  EXPECT_TRUE(touches("load_module", "module"));
  EXPECT_TRUE(touches("do_fork", "mm"));
  EXPECT_TRUE(touches("sched_tick", "time"));
  EXPECT_TRUE(touches("context_switch", "sched"));
  EXPECT_FALSE(touches("sys_gettimeofday", "net"));
}

TEST_F(KernelServicesTest, DistinctServicesHaveDistinctFootprints) {
  // Different syscalls must be distinguishable in an MHM: their step
  // function sets must not be identical.
  auto functions_of = [&](const char* name) {
    std::vector<std::size_t> fns;
    for (const auto& step : catalog_.service(catalog_.id(name)).steps) {
      fns.push_back(step.function);
    }
    return fns;
  };
  EXPECT_NE(functions_of("sys_read"), functions_of("sys_write"));
  EXPECT_NE(functions_of("do_fork"), functions_of("do_execve"));
}

TEST_F(KernelServicesTest, AddCustomService) {
  KernelService svc;
  svc.name = "custom_op";
  svc.steps.push_back(ServiceStep{.function = 0, .mean_sweeps = 2.0});
  const ServiceId sid = catalog_.add(svc);
  EXPECT_TRUE(catalog_.contains("custom_op"));
  EXPECT_EQ(catalog_.id("custom_op"), sid);
}

TEST_F(KernelServicesTest, AddRejectsDuplicateName) {
  KernelService svc;
  svc.name = "sys_read";
  EXPECT_THROW(catalog_.add(svc), ConfigError);
}

TEST_F(KernelServicesTest, AddRejectsUnknownFunction) {
  KernelService svc;
  svc.name = "bad_service";
  svc.steps.push_back(
      ServiceStep{.function = image_.functions().size(), .mean_sweeps = 1.0});
  EXPECT_THROW(catalog_.add(svc), LogicError);
}

TEST_F(KernelServicesTest, HeavyweightServicesEmitMoreThanLightweight) {
  const double fork_cost =
      catalog_.service(catalog_.id("do_fork")).expected_accesses(image_);
  const double gtod_cost =
      catalog_.service(catalog_.id("sys_gettimeofday")).expected_accesses(image_);
  EXPECT_GT(fork_cost, 5.0 * gtod_cost);
}

}  // namespace
}  // namespace mhm::sim
