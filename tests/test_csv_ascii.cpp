#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"

namespace mhm {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("mhm_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.header({"interval", "log10_density"});
    csv.row().col(std::uint64_t{0}).col(-12.5);
    csv.row().col(std::uint64_t{1}).col(-13.25);
  }
  EXPECT_EQ(read_file(path_),
            "interval,log10_density\n0,-12.5\n1,-13.25\n");
}

TEST_F(CsvWriterTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.row().col("plain").col("has,comma").col("has\"quote");
  }
  EXPECT_EQ(read_file(path_), "plain,\"has,comma\",\"has\"\"quote\"\n");
}

TEST_F(CsvWriterTest, EmptyFileHasNoTrailingNewline) {
  { CsvWriter csv(path_); }
  EXPECT_EQ(read_file(path_), "");
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv"), ConfigError);
}

TEST(CsvEscape, PassesThroughPlainStrings) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesNewlines) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(RenderLinePlot, EmptySeries) {
  EXPECT_EQ(render_line_plot({}, LinePlotOptions{}), "(empty series)\n");
}

TEST(RenderLinePlot, ContainsDataMarksAndAxes) {
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) ys.push_back(static_cast<double>(i));
  LinePlotOptions opt;
  opt.title = "ramp";
  const std::string plot = render_line_plot(ys, opt);
  EXPECT_NE(plot.find("ramp"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find("99"), std::string::npos);  // x-axis max label
}

TEST(RenderLinePlot, DrawsReferenceLines) {
  std::vector<double> ys(50, 5.0);
  LinePlotOptions opt;
  opt.hlines = {0.0};
  const std::string plot = render_line_plot(ys, opt);
  EXPECT_NE(plot.find('-'), std::string::npos);
}

TEST(RenderLinePlot, HandlesNonFiniteValues) {
  std::vector<double> ys = {1.0, -std::numeric_limits<double>::infinity(),
                            2.0, std::nan("")};
  const std::string plot = render_line_plot(ys, LinePlotOptions{});
  EXPECT_FALSE(plot.empty());  // must not crash or emit empty output
}

TEST(RenderLinePlot, ConstantSeries) {
  std::vector<double> ys(20, 3.0);
  const std::string plot = render_line_plot(ys, LinePlotOptions{});
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(RenderHeatMap, EmptyMap) {
  EXPECT_EQ(render_heat_map({}, HeatMapPlotOptions{}), "(empty heat map)\n");
}

TEST(RenderHeatMap, GeometryMatchesOptions) {
  std::vector<std::uint64_t> cells(100, 1);
  HeatMapPlotOptions opt;
  opt.width = 20;
  opt.rows = 4;
  opt.title = "map";
  const std::string out = render_heat_map(cells, opt);
  // 4 content rows + 2 border rows + title.
  int rows = 0;
  for (char c : out) rows += (c == '\n');
  EXPECT_EQ(rows, 7);
}

TEST(RenderHeatMap, HotCellsShadeDarker) {
  std::vector<std::uint64_t> cells(64, 0);
  cells[10] = 100000;
  HeatMapPlotOptions opt;
  opt.width = 64;
  opt.rows = 1;
  const std::string out = render_heat_map(cells, opt);
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(RenderHeatMap, AllZeroDoesNotDivideByZero) {
  std::vector<std::uint64_t> cells(32, 0);
  const std::string out = render_heat_map(cells, HeatMapPlotOptions{});
  EXPECT_FALSE(out.empty());
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), LogicError);
}

TEST(FmtDouble, RespectsPrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

}  // namespace
}  // namespace mhm
