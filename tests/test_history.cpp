// Multi-resolution score history (src/obs/history): ring/fold mechanics,
// fixed memory, and the /history JSON rendering.

#include "obs/history.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace mhm::obs {
namespace {

HistorySample sample_at(std::uint64_t interval, double score,
                        bool alarm = false, std::uint8_t status = 0) {
  HistorySample s;
  s.interval = interval;
  s.score = score;
  s.spe = score * score;
  s.alarm = alarm;
  s.status = status;
  s.model_version = 3;
  return s;
}

TEST(HistoryTest, RawRingKeepsNewestOldestFirst) {
  HistoryOptions opts;
  opts.raw_capacity = 4;
  opts.tiers = 0;
  ScoreHistory history(opts);
  for (std::uint64_t i = 0; i < 10; ++i) {
    history.append(sample_at(i, -static_cast<double>(i)));
  }
  const auto raw = history.raw_snapshot();
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_EQ(raw.front().interval, 6u);
  EXPECT_EQ(raw.back().interval, 9u);
  EXPECT_EQ(history.total_appended(), 10u);
}

TEST(HistoryTest, FoldCommitsMinMeanMaxBins) {
  HistoryOptions opts;
  opts.raw_capacity = 16;
  opts.bin_capacity = 8;
  opts.fold = 4;
  opts.tiers = 1;
  ScoreHistory history(opts);
  // One full fold: scores -1, -2, -3, -4 with an alarm on the last.
  for (std::uint64_t i = 0; i < 4; ++i) {
    history.append(sample_at(i, -static_cast<double>(i + 1), i == 3,
                             i == 3 ? 1 : 0));
  }
  const auto bins = history.tier_snapshot(1);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].first_interval, 0u);
  EXPECT_EQ(bins[0].last_interval, 3u);
  EXPECT_EQ(bins[0].count, 4u);
  EXPECT_EQ(bins[0].alarms, 1u);
  EXPECT_EQ(bins[0].worst_status, 1);
  EXPECT_DOUBLE_EQ(bins[0].score_min, -4.0);
  EXPECT_DOUBLE_EQ(bins[0].score_max, -1.0);
  EXPECT_DOUBLE_EQ(bins[0].score_mean, -2.5);
}

TEST(HistoryTest, TierTwoSpansFoldSquared) {
  HistoryOptions opts;
  opts.raw_capacity = 8;
  opts.bin_capacity = 8;
  opts.fold = 2;
  opts.tiers = 2;
  ScoreHistory history(opts);
  EXPECT_EQ(history.span_at(0), 1u);
  EXPECT_EQ(history.span_at(1), 2u);
  EXPECT_EQ(history.span_at(2), 4u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    history.append(sample_at(i, -static_cast<double>(i)));
  }
  const auto t1 = history.tier_snapshot(1);
  const auto t2 = history.tier_snapshot(2);
  ASSERT_EQ(t1.size(), 4u);
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_EQ(t2[0].count, 4u);
  EXPECT_EQ(t2[0].first_interval, 0u);
  EXPECT_EQ(t2[0].last_interval, 3u);
  EXPECT_DOUBLE_EQ(t2[0].score_min, -3.0);
  EXPECT_DOUBLE_EQ(t2[0].score_mean, -1.5);
  // Out-of-range tier is empty, not an error.
  EXPECT_TRUE(history.tier_snapshot(3).empty());
}

TEST(HistoryTest, MemoryIsFixedAndWithinFleetBudget) {
  // The fleet preset: raw 32, bins 16, one folded tier. The rings must not
  // grow with appends and must stay far inside the 64 KB session budget.
  HistoryOptions opts;
  opts.raw_capacity = 32;
  opts.bin_capacity = 16;
  opts.fold = 8;
  opts.tiers = 1;
  ScoreHistory history(opts);
  const std::size_t before = history.memory_bytes();
  for (std::uint64_t i = 0; i < 10000; ++i) {
    history.append(sample_at(i, -1.0));
  }
  EXPECT_EQ(history.memory_bytes(), before);
  EXPECT_LT(history.memory_bytes(), 64u * 1024u);
  // The single-stream default also fits the per-session budget.
  ScoreHistory full{HistoryOptions{}};
  EXPECT_LT(full.memory_bytes(), 64u * 1024u);
}

TEST(HistoryTest, JsonRendersSeriesAndResolution) {
  HistoryOptions opts;
  opts.raw_capacity = 8;
  opts.bin_capacity = 4;
  opts.fold = 2;
  opts.tiers = 1;
  ScoreHistory history(opts);
  for (std::uint64_t i = 0; i < 4; ++i) {
    history.append(sample_at(i, -2.0, i == 1));
  }
  const std::string raw = history_json(history, "score", 0);
  EXPECT_NE(raw.find("\"res\":0"), std::string::npos);
  EXPECT_NE(raw.find("\"interval\":3"), std::string::npos);
  EXPECT_NE(raw.find("\"score\":"), std::string::npos);
  EXPECT_EQ(raw.find("\"spe\":"), std::string::npos);

  const std::string all = history_json(history, "all", 0);
  EXPECT_NE(all.find("\"spe\":"), std::string::npos);
  EXPECT_NE(all.find("\"alarm\":1"), std::string::npos);

  const std::string folded = history_json(history, "score", 1);
  EXPECT_NE(folded.find("\"res\":1"), std::string::npos);
  EXPECT_NE(folded.find("\"score_min\":"), std::string::npos);
  EXPECT_NE(folded.find("\"count\":2"), std::string::npos);
}

TEST(HistoryTest, JsonFromFiltersOldEntries) {
  ScoreHistory history{HistoryOptions{}};
  for (std::uint64_t i = 0; i < 10; ++i) {
    history.append(sample_at(i, -1.0));
  }
  const std::string tail = history_json(history, "score", 0, 8);
  EXPECT_EQ(tail.find("\"interval\":7"), std::string::npos);
  EXPECT_NE(tail.find("\"interval\":8"), std::string::npos);
  EXPECT_NE(tail.find("\"interval\":9"), std::string::npos);
  // A from beyond the ring yields an empty samples array, not an error.
  const std::string empty = history_json(history, "score", 0, 1000);
  EXPECT_NE(empty.find("\"samples\":[]"), std::string::npos);
}

}  // namespace
}  // namespace mhm::obs
