#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attacks/attacks.hpp"
#include "pipeline/experiment.hpp"

namespace mhm {
namespace {

/// Restores the kill switch on scope exit so one test cannot leak a
/// disabled obs layer into the next.
struct EnabledGuard {
  bool saved = obs::enabled();
  ~EnabledGuard() { obs::set_enabled(saved); }
};

TEST(Registry, CounterFoldIsExactAcrossThreadCounts) {
  EnabledGuard guard;
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  // The same logical workload split over 1, 2 and 8 threads must fold to
  // the same total: shards are integers, so the fold is exact no matter
  // which thread landed on which slot.
  constexpr std::uint64_t kPerThreadAdds = 10'000;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    obs::Counter& c = obs::Registry::instance().counter("test.fold.counter");
    c.reset();
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (std::uint64_t i = 0; i < kPerThreadAdds; ++i) c.add();
      });
    }
    for (auto& t : pool) t.join();
    EXPECT_EQ(c.value(), kPerThreadAdds * threads) << threads << " threads";
  }
}

TEST(Registry, HistogramFoldIsDeterministic) {
  EnabledGuard guard;
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  obs::Histogram& h = obs::Registry::instance().histogram(
      "test.fold.histogram", {1.0, 10.0, 100.0});
  for (const std::size_t threads : {1u, 2u, 8u}) {
    h.reset();
    // Each thread observes the same integer-valued set, so count, sum and
    // every bucket must match the serial result exactly.
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < 100; ++i) h.observe(0.5);   // bucket le=1
        for (int i = 0; i < 10; ++i) h.observe(5.0);    // bucket le=10
        for (int i = 0; i < 3; ++i) h.observe(1000.0);  // +Inf bucket
      });
    }
    for (auto& t : pool) t.join();
    const auto n = static_cast<std::uint64_t>(threads);
    EXPECT_EQ(h.count(), 113 * n);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(n) * (100 * 0.5 + 10 * 5.0 + 3 * 1000.0));
    const auto buckets = h.bucket_counts();
    ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + Inf
    EXPECT_EQ(buckets[0], 100 * n);
    EXPECT_EQ(buckets[1], 10 * n);
    EXPECT_EQ(buckets[2], 0u);
    EXPECT_EQ(buckets[3], 3 * n);
  }
}

TEST(Registry, FindOrCreateReturnsStableHandles) {
  obs::Counter& a = obs::Registry::instance().counter("test.stable");
  obs::Counter& b = obs::Registry::instance().counter("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST(Registry, TypeMismatchThrows) {
  obs::Registry::instance().counter("test.mismatch");
  EXPECT_THROW(obs::Registry::instance().gauge("test.mismatch"),
               std::logic_error);
  EXPECT_THROW(
      obs::Registry::instance().histogram("test.mismatch", {1.0}),
      std::logic_error);
}

TEST(Registry, SnapshotIsLexicographicallyOrdered) {
  obs::Registry::instance().counter("test.order.b");
  obs::Registry::instance().counter("test.order.a");
  const auto snap = obs::Registry::instance().snapshot();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
}

TEST(Spans, NestingRecordsParentIds) {
  EnabledGuard guard;
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  obs::SpanBuffer::instance().clear();
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    obs::SpanScope outer("test.outer");
    outer_id = outer.id();
    {
      obs::SpanScope inner("test.inner");
      inner_id = inner.id();
    }
  }
  ASSERT_NE(outer_id, 0u);
  ASSERT_NE(inner_id, 0u);
  const auto spans = obs::SpanBuffer::instance().snapshot();
  // Children close before parents, so the inner span is recorded first.
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].id, inner_id);
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
}

TEST(Spans, RingWrapsAroundKeepingNewest) {
  EnabledGuard guard;
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  obs::SpanBuffer& buffer = obs::SpanBuffer::instance();
  const std::size_t saved_capacity = buffer.capacity();
  buffer.set_capacity(8);
  const std::uint64_t before = buffer.total_recorded();
  for (int i = 0; i < 20; ++i) {
    OBS_SPAN("test.wrap");
  }
  const auto spans = buffer.snapshot();
  EXPECT_EQ(spans.size(), 8u);
  EXPECT_EQ(buffer.total_recorded(), before + 20);
  // Oldest-to-newest: ids must be strictly increasing.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].id, spans[i - 1].id);
  }
  buffer.set_capacity(saved_capacity);
}

TEST(Journal, CapturesInjectedAttackAlarms) {
  EnabledGuard guard;
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  // Fast-scale end-to-end: train on normal behaviour, run the shellcode
  // scenario, and require the journal to explain the alarms the detector
  // returned — interval, density vs threshold, and deviating cells.
  const sim::SystemConfig cfg = pipeline::fast_test_config(1);
  pipeline::TrainedPipeline pipe =
      pipeline::train_pipeline(cfg, pipeline::fast_test_plan(),
                               pipeline::fast_test_detector_options());
  auto attack = attacks::make_scenario("shellcode");
  const pipeline::ScenarioRun run = pipeline::run_scenario(
      cfg, attack.get(), 500 * kMillisecond, 1500 * kMillisecond,
      &pipe.det(), 42);

  std::size_t verdict_alarms = 0;
  for (const auto& v : run.verdicts) verdict_alarms += v.anomalous;
  ASSERT_GT(verdict_alarms, 0u) << "shellcode must trip the detector";

  const auto alarms = pipe.det().journal().alarms();
  EXPECT_EQ(alarms.size(), verdict_alarms);
  for (const auto& rec : alarms) {
    EXPECT_LT(rec.log10_density, rec.threshold);
    EXPECT_DOUBLE_EQ(rec.threshold,
                     pipe.det().primary_threshold().log10_value);
    ASSERT_FALSE(rec.top_cells.empty());
    // Contributions are ranked by |z| descending.
    for (std::size_t i = 1; i < rec.top_cells.size(); ++i) {
      EXPECT_GE(std::abs(rec.top_cells[i - 1].z_score),
                std::abs(rec.top_cells[i].z_score));
    }
  }
  // Every alarm is findable by interval index.
  for (const auto& v : run.verdicts) {
    if (!v.anomalous) continue;
    const auto rec = pipe.det().journal().find(v.interval_index);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->log10_density, v.log10_density);  // bit-for-bit
  }
}

TEST(KillSwitch, DisabledLayerRecordsNothing) {
  EnabledGuard guard;
  obs::set_enabled(false);

  obs::Counter& c = obs::Registry::instance().counter("test.disabled.counter");
  c.reset();
  c.add(42);
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge& g = obs::Registry::instance().gauge("test.disabled.gauge");
  g.reset();
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);

  obs::Histogram& h =
      obs::Registry::instance().histogram("test.disabled.histogram", {1.0});
  h.reset();
  h.observe(0.5);
  EXPECT_EQ(h.count(), 0u);

  obs::SpanBuffer::instance().clear();
  {
    obs::SpanScope span("test.disabled.span");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(obs::SpanBuffer::instance().snapshot().empty());

  obs::DecisionJournal journal(4);
  journal.append(obs::DecisionRecord{});
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.total_appended(), 0u);
}

TEST(Exporters, PrometheusTextCarriesFoldedValues) {
  EnabledGuard guard;
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  obs::Counter& c = obs::Registry::instance().counter(
      "test.export.counter", "help text");
  c.reset();
  c.add(3);
  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("# TYPE mhm_test_export_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("mhm_test_export_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# HELP mhm_test_export_counter help text"),
            std::string::npos);
}

TEST(Exporters, JournalJsonLinesRoundTripFields) {
  EnabledGuard guard;
  obs::set_enabled(true);
  if (!obs::enabled()) GTEST_SKIP() << "obs layer compiled out";
  obs::DecisionJournal journal(4);
  obs::DecisionRecord rec;
  rec.interval_index = 7;
  rec.phase = 3;
  rec.reduced_coords = {1.5, -2.0};
  rec.log10_density = -42.5;
  rec.threshold = -30.0;
  rec.alarm = true;
  rec.nearest_pattern = 2;
  rec.top_cells.push_back(
      obs::CellContribution{.cell = 9, .observed = 100.0, .expected = 1.0,
                            .z_score = 12.0});
  journal.append(rec);
  const std::string lines = obs::journal_json_lines(journal);
  EXPECT_NE(lines.find("\"interval\":7"), std::string::npos);
  EXPECT_NE(lines.find("\"alarm\":true"), std::string::npos);
  EXPECT_NE(lines.find("\"cell\":9"), std::string::npos);
}

}  // namespace
}  // namespace mhm
