#include "core/alarm_filter.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mhm {
namespace {

TEST(AlarmFilter, ValidatesParameters) {
  EXPECT_THROW(AlarmFilter(0, 5), ConfigError);
  EXPECT_THROW(AlarmFilter(3, 0), ConfigError);
  EXPECT_THROW(AlarmFilter(6, 5), ConfigError);
  EXPECT_NO_THROW(AlarmFilter(1, 1));
  EXPECT_NO_THROW(AlarmFilter(5, 5));
}

TEST(AlarmFilter, OneOfOneIsPassThrough) {
  AlarmFilter filter(1, 1);
  EXPECT_FALSE(filter.feed(false));
  EXPECT_TRUE(filter.feed(true));
  EXPECT_FALSE(filter.feed(false));
}

TEST(AlarmFilter, RequiresKHitsInWindow) {
  AlarmFilter filter(2, 3);
  EXPECT_FALSE(filter.feed(true));   // 1 of last 1
  EXPECT_FALSE(filter.feed(false));  // 1 of last 2
  EXPECT_TRUE(filter.feed(true));    // 2 of last 3
  EXPECT_FALSE(filter.feed(false));  // window [false,true,false]... count 1
  EXPECT_FALSE(filter.feed(false));  // [true,false,false] -> 1
  EXPECT_FALSE(filter.feed(false));  // [false,false,false] -> 0
}

TEST(AlarmFilter, SlidingWindowExpiresOldHits) {
  AlarmFilter filter(2, 4);
  EXPECT_FALSE(filter.feed(true));
  EXPECT_TRUE(filter.feed(true));    // [T,T] -> 2 hits, fires
  EXPECT_TRUE(filter.feed(false));   // [T,T,F] -> still 2
  EXPECT_TRUE(filter.feed(false));   // [T,T,F,F] -> still 2
  EXPECT_FALSE(filter.feed(false));  // [T,F,F,F] -> oldest hit expired
  EXPECT_EQ(filter.current_count(), 1u);
}

TEST(AlarmFilter, CountTracksWindowContents) {
  AlarmFilter filter(3, 5);
  for (int i = 0; i < 5; ++i) filter.feed(i % 2 == 0);  // T F T F T
  EXPECT_EQ(filter.current_count(), 3u);
  filter.feed(false);  // drops the oldest T
  EXPECT_EQ(filter.current_count(), 2u);
}

TEST(AlarmFilter, ConsecutiveRunAlwaysFiresAfterK) {
  AlarmFilter filter(3, 5);
  EXPECT_FALSE(filter.feed(true));
  EXPECT_FALSE(filter.feed(true));
  EXPECT_TRUE(filter.feed(true));
  EXPECT_TRUE(filter.feed(true));
}

TEST(AlarmFilter, ResetClearsHistory) {
  AlarmFilter filter(2, 3);
  filter.feed(true);
  filter.feed(true);
  filter.reset();
  EXPECT_EQ(filter.current_count(), 0u);
  EXPECT_FALSE(filter.feed(true));  // needs 2 again
}

TEST(AlarmFilter, SuppressesIsolatedFalsePositives) {
  // Property: under iid per-interval FP rate p, a 2-of-3 filter fires far
  // less often than the raw stream.
  Rng rng(7);
  const double p = 0.02;
  AlarmFilter filter(2, 3);
  std::size_t raw = 0;
  std::size_t filtered = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const bool alarm = rng.bernoulli(p);
    raw += alarm;
    filtered += filter.feed(alarm);
  }
  EXPECT_NEAR(static_cast<double>(raw) / n, p, 0.002);
  // Expected filtered rate ~ C(3,2) p^2 = 3 * 4e-4 = 1.2e-3.
  EXPECT_LT(static_cast<double>(filtered) / n, 0.005);
  EXPECT_GT(raw, filtered * 5);
}

TEST(AlarmFilter, PreservesDetectionOfSustainedAnomalies) {
  // An attack that keeps densities low for m >= n intervals is always
  // caught, with latency at most k-1 extra intervals.
  AlarmFilter filter(3, 5);
  int latency = -1;
  for (int i = 0; i < 10; ++i) {
    if (filter.feed(true) && latency < 0) latency = i;
  }
  EXPECT_EQ(latency, 2);  // k-1
}

}  // namespace
}  // namespace mhm
