#include "hw/memometer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mhm::hw {
namespace {

/// Reference model: process a burst one 4-byte fetch at a time with the
/// paper's exact filter + shift arithmetic (§3.1). The Memometer's
/// burst-granular implementation must be bit-identical to this.
void reference_record(const MhmConfig& cfg, const AccessBurst& burst,
                      std::vector<std::uint64_t>& cells) {
  for (std::uint64_t sweep = 0; sweep < burst.sweeps; ++sweep) {
    for (Address addr = burst.base; addr < burst.base + burst.size_bytes;
         addr += AccessBurst::kWordBytes) {
      if (addr < cfg.base) continue;
      const std::uint64_t offset = addr - cfg.base;
      if (offset >= cfg.size) continue;
      cells[offset >> cfg.shift_bits()] += 1;
    }
  }
}

MhmConfig small_config() {
  MhmConfig cfg;
  cfg.base = 0x1000;
  cfg.size = 64 * 1024;
  cfg.granularity = 1024;
  cfg.interval = 10 * kMillisecond;
  return cfg;
}

TEST(Memometer, RejectsTooManyCells) {
  MhmConfig cfg = small_config();
  cfg.size = 4 * 1024 * 1024;  // 4096 cells at 1 KB > 2048 capacity
  EXPECT_THROW(Memometer(cfg, 0, nullptr), ConfigError);
}

TEST(Memometer, PaperConfigFitsOnChipMemory) {
  // 1,472 cells <= 2,048 ("at most about 2,000 cells", §5.1).
  EXPECT_EQ(Memometer::kMaxCells, 2048u);
  EXPECT_NO_THROW(Memometer(MhmConfig::paper_default(), 0, nullptr));
}

TEST(Memometer, SingleFetchLandsInCorrectCell) {
  const MhmConfig cfg = small_config();
  Memometer meter(cfg, 0, nullptr);
  // Address 0x1000 + 3*1024 + 8 -> cell 3.
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000 + 3 * 1024 + 8,
                             .size_bytes = 4, .sweeps = 1});
  EXPECT_EQ(meter.active_map()[3], 1u);
  EXPECT_EQ(meter.accesses_counted(), 1u);
  EXPECT_EQ(meter.accesses_filtered_out(), 0u);
}

TEST(Memometer, FiltersAddressesOutsideRegion) {
  const MhmConfig cfg = small_config();
  Memometer meter(cfg, 0, nullptr);
  meter.on_burst(AccessBurst{.time = 0, .base = 0x0500, .size_bytes = 4,
                             .sweeps = 1});  // below base
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000 + 64 * 1024,
                             .size_bytes = 4, .sweeps = 1});  // at end (excl.)
  EXPECT_EQ(meter.accesses_counted(), 0u);
  EXPECT_EQ(meter.accesses_filtered_out(), 2u);
}

TEST(Memometer, BurstStraddlingRegionStartCountsOnlyInside) {
  const MhmConfig cfg = small_config();
  Memometer meter(cfg, 0, nullptr);
  // 8 words starting 16 bytes below the base: 4 filtered, 4 counted.
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000 - 16,
                             .size_bytes = 32, .sweeps = 1});
  EXPECT_EQ(meter.accesses_counted(), 4u);
  EXPECT_EQ(meter.accesses_filtered_out(), 4u);
  EXPECT_EQ(meter.active_map()[0], 4u);
}

TEST(Memometer, BurstSpanningMultipleCellsSplitsCounts) {
  const MhmConfig cfg = small_config();
  Memometer meter(cfg, 0, nullptr);
  // 1,024 bytes starting half-way into cell 0: 128 words in cell 0,
  // 128 words in cell 1.
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000 + 512,
                             .size_bytes = 1024, .sweeps = 1});
  EXPECT_EQ(meter.active_map()[0], 128u);
  EXPECT_EQ(meter.active_map()[1], 128u);
}

TEST(Memometer, SweepsMultiplyCounts) {
  const MhmConfig cfg = small_config();
  Memometer meter(cfg, 0, nullptr);
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000, .size_bytes = 64,
                             .sweeps = 10});
  EXPECT_EQ(meter.active_map()[0], 160u);  // 16 words * 10
}

class MemometerEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemometerEquivalenceTest, BurstArithmeticMatchesPerFetchReference) {
  // Property test: for random bursts (random alignment, size, sweep count,
  // partially outside the region), the Memometer's burst arithmetic must be
  // bit-identical to fetch-by-fetch processing.
  const MhmConfig cfg = small_config();
  Memometer meter(cfg, 0, nullptr);
  std::vector<std::uint64_t> reference(cfg.cell_count(), 0);

  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    AccessBurst b;
    b.time = static_cast<SimTime>(i);
    // Random word-aligned base from below the region to beyond its end.
    b.base = 0x0800 + static_cast<Address>(rng.uniform_int(0, 70 * 1024)) * 4 / 4 * 4;
    b.size_bytes = static_cast<std::uint64_t>(rng.uniform_int(1, 8 * 1024));
    b.sweeps = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
    meter.on_burst(b);
    reference_record(cfg, b, reference);
  }
  for (std::size_t c = 0; c < cfg.cell_count(); ++c) {
    ASSERT_EQ(meter.active_map()[c], reference[c]) << "cell " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemometerEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Memometer, DeliversMapAtIntervalBoundary) {
  const MhmConfig cfg = small_config();
  std::vector<HeatMap> delivered;
  Memometer meter(cfg, 0, [&](const HeatMap& m) { delivered.push_back(m); });

  meter.on_burst(AccessBurst{.time = 1 * kMillisecond, .base = 0x1000,
                             .size_bytes = 4, .sweeps = 1});
  EXPECT_TRUE(delivered.empty());
  meter.on_time(10 * kMillisecond);  // boundary
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].interval_index, 0u);
  EXPECT_EQ(delivered[0].total_accesses(), 1u);
  EXPECT_EQ(meter.intervals_completed(), 1u);
}

TEST(Memometer, AttributesAccessesToTheRightInterval) {
  const MhmConfig cfg = small_config();
  std::vector<HeatMap> delivered;
  Memometer meter(cfg, 0, [&](const HeatMap& m) { delivered.push_back(m); });

  meter.on_burst(AccessBurst{.time = 9 * kMillisecond, .base = 0x1000,
                             .size_bytes = 4, .sweeps = 1});
  // This burst arrives at t = 12 ms: interval 0 must close with only the
  // first access; the second belongs to interval 1.
  meter.on_burst(AccessBurst{.time = 12 * kMillisecond, .base = 0x1000,
                             .size_bytes = 4, .sweeps = 3});
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].total_accesses(), 1u);
  meter.on_time(20 * kMillisecond);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[1].total_accesses(), 3u);
  EXPECT_EQ(delivered[1].interval_index, 1u);
}

TEST(Memometer, QuietIntervalsStillDeliverEmptyMaps) {
  const MhmConfig cfg = small_config();
  std::vector<HeatMap> delivered;
  Memometer meter(cfg, 0, [&](const HeatMap& m) { delivered.push_back(m); });
  meter.on_time(35 * kMillisecond);  // three full boundaries, no traffic
  ASSERT_EQ(delivered.size(), 3u);
  for (const auto& m : delivered) EXPECT_EQ(m.total_accesses(), 0u);
}

TEST(Memometer, DoubleBufferingAlternatesUnits) {
  // §3.1: at each boundary the other on-chip memory becomes active.
  const MhmConfig cfg = small_config();
  Memometer meter(cfg, 0, nullptr);
  EXPECT_EQ(meter.active_unit(), 0);
  meter.on_time(10 * kMillisecond);
  EXPECT_EQ(meter.active_unit(), 1);
  meter.on_time(20 * kMillisecond);
  EXPECT_EQ(meter.active_unit(), 0);
  meter.on_time(40 * kMillisecond);  // two boundaries at once
  EXPECT_EQ(meter.active_unit(), 0);
}

TEST(Memometer, BufferIsCleanWhenReused) {
  const MhmConfig cfg = small_config();
  std::vector<std::uint64_t> totals;
  Memometer meter(cfg, 0,
                  [&](const HeatMap& m) { totals.push_back(m.total_accesses()); });
  // Interval 0: 5 accesses into unit 0.
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000, .size_bytes = 20,
                             .sweeps = 1});
  meter.on_time(10 * kMillisecond);
  // Intervals 1 and 2 silent; unit 0 is reused for interval 2 and must not
  // still hold interval 0's counts.
  meter.on_time(30 * kMillisecond);
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0], 5u);
  EXPECT_EQ(totals[1], 0u);
  EXPECT_EQ(totals[2], 0u);
}

TEST(Memometer, FinishDeliversPartialOnlyWhenRequested) {
  const MhmConfig cfg = small_config();
  std::vector<HeatMap> delivered;
  Memometer meter(cfg, 0, [&](const HeatMap& m) { delivered.push_back(m); });
  meter.on_burst(AccessBurst{.time = 2 * kMillisecond, .base = 0x1000,
                             .size_bytes = 4, .sweeps = 1});

  meter.finish(5 * kMillisecond, /*deliver_partial=*/false);
  EXPECT_TRUE(delivered.empty());
  meter.finish(6 * kMillisecond, /*deliver_partial=*/true);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].total_accesses(), 1u);
}

TEST(Memometer, StartTimeOffsetsFirstInterval) {
  const MhmConfig cfg = small_config();
  std::vector<HeatMap> delivered;
  Memometer meter(cfg, 100 * kMillisecond,
                  [&](const HeatMap& m) { delivered.push_back(m); });
  meter.on_time(109 * kMillisecond);
  EXPECT_TRUE(delivered.empty());
  meter.on_time(110 * kMillisecond);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].interval_start, 100 * kMillisecond);
}

TEST(Memometer, GranularityOneCellPerRegion) {
  MhmConfig cfg = small_config();
  cfg.granularity = 65536;  // whole region in one cell
  Memometer meter(cfg, 0, nullptr);
  meter.on_burst(AccessBurst{.time = 0, .base = 0x1000, .size_bytes = 4096,
                             .sweeps = 2});
  EXPECT_EQ(meter.active_map()[0], 2048u);
}

}  // namespace
}  // namespace mhm::hw
